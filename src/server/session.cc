#include "server/session.h"

#include "db/database.h"
#include "gist/cursor.h"
#include "obs/trace.h"

namespace gistcr {

namespace {

using net::ErrorCode;
using net::Opcode;

/// Static span names for the tracer (it stores the pointer, not a copy).
/// Unused when tracing is compiled out (GISTCR_TRACING=OFF).
[[maybe_unused]] const char* TraceNameFor(Opcode op) {
  switch (op) {
    case Opcode::kPing: return "server.ping";
    case Opcode::kBegin: return "server.begin";
    case Opcode::kCommit: return "server.commit";
    case Opcode::kAbort: return "server.abort";
    case Opcode::kInsert: return "server.insert";
    case Opcode::kDelete: return "server.delete";
    case Opcode::kSearch: return "server.search";
    case Opcode::kStats: return "server.stats";
    case Opcode::kInspect: return "server.inspect";
    default: return "server.request";
  }
}

/// Caps one SearchBatch frame: flush when the encoded payload crosses this
/// even if the count limit has not been reached, keeping every response
/// frame well under net::kMaxResponsePayload.
constexpr size_t kBatchByteLimit = 256 * 1024;
constexpr uint32_t kDefaultBatchSize = 128;

}  // namespace

void ServerMetrics::Attach(obs::MetricsRegistry* reg) {
  reg = obs::MetricsRegistry::OrFallback(reg);
  requests = reg->GetCounter("server.requests");
  protocol_errors = reg->GetCounter("server.errors.protocol");
  request_errors = reg->GetCounter("server.errors.request");
  timeouts = reg->GetCounter("server.timeouts");
  disconnect_aborts = reg->GetCounter("server.disconnect_aborts");
  accepts = reg->GetCounter("server.accepts");
  backpressure_pauses = reg->GetCounter("server.backpressure_pauses");
  bytes_in = reg->GetCounter("server.bytes_in");
  bytes_out = reg->GetCounter("server.bytes_out");
  active_connections = reg->GetGauge("server.active_connections");
  queue_depth = reg->GetGauge("server.queue_depth");
  request_latency = reg->GetHistogram("server.request_latency");
  for (uint8_t op = static_cast<uint8_t>(Opcode::kPing);
       op <= static_cast<uint8_t>(Opcode::kInspect); op++) {
    const char* name = net::OpcodeName(static_cast<Opcode>(op));
    op_count[op] = reg->GetCounter(std::string("server.op.") + name);
    op_latency[op] = reg->GetHistogram(std::string("server.latency.") + name);
  }
  request_total = reg->GetHistogram("rpc.request_total");
  for (size_t s = 0; s < obs::kNumStages; s++) {
    stage[s] = reg->GetHistogram(std::string("rpc.stage.") +
                                 obs::StageName(static_cast<obs::Stage>(s)));
  }
}

Status Session::SendFrame(Opcode op, uint64_t request_id, Slice payload,
                          uint8_t flags) {
  net::Frame f;
  f.opcode = op;
  f.flags = flags;
  f.request_id = request_id;
  f.payload.assign(payload.data(), payload.size());
  std::string wire;
  net::EncodeFrame(f, &wire);
  metrics_->bytes_out->Add(wire.size());
  return net::WriteFully(sock_.fd(), wire.data(), wire.size());
}

Status Session::SendError(uint64_t request_id, ErrorCode code, Slice msg) {
  metrics_->request_errors->Add(1);
  std::string payload;
  net::EncodeErrorPayload(code, txn_aborted_flag_, msg, &payload);
  txn_aborted_flag_ = false;
  return SendFrame(Opcode::kError, request_id, payload);
}

void Session::AbortOpenTxn(Database* db, const ServerMetrics& metrics) {
  if (txn_ == nullptr) return;
  if (db->txns()->IsActive(txn_->id())) {
    (void)db->Abort(txn_);
    metrics.disconnect_aborts->Add(1);
  }
  txn_ = nullptr;
}

template <typename Fn>
Status Session::InTxn(bool draining, Database* db, Fn body) {
  if (txn_ != nullptr) {
    if (obs::OpContext* op = obs::CurrentOp()) op->txn_id = txn_->id();
    Status st = body(txn_);
    if (st.IsDeadlock()) {
      // The operation lost deadlock detection: the transaction must roll
      // back (it is this session's, so tell the client it is gone).
      if (db->txns()->IsActive(txn_->id())) (void)db->Abort(txn_);
      txn_ = nullptr;
      txn_aborted_flag_ = true;
    }
    return st;
  }
  // Auto-commit: a one-shot transaction wrapping this single request.
  if (draining) {
    return Status::Aborted("server shutting down");
  }
  Transaction* txn = db->Begin(IsolationLevel::kRepeatableRead);
  if (obs::OpContext* op = obs::CurrentOp()) op->txn_id = txn->id();
  Status st = body(txn);
  if (st.ok()) {
    st = db->Commit(txn);
    if (st.ok()) return st;
  }
  if (db->txns()->IsActive(txn->id())) (void)db->Abort(txn);
  return st;
}

Status Session::HandleBegin(const net::Frame& req, bool draining, Database* db) {
  if (txn_ != nullptr) {
    return SendError(req.request_id, ErrorCode::kTransactionOpen,
                     "transaction already open on this session");
  }
  if (draining) {
    return SendError(req.request_id, ErrorCode::kShuttingDown,
                     "server draining; no new transactions");
  }
  Decoder dec(req.payload);
  uint16_t iso = 1;
  if (!req.payload.empty() && !dec.GetFixed16(&iso)) {
    return SendError(req.request_id, ErrorCode::kMalformedPayload,
                     "begin payload");
  }
  // iso: 0 = read committed, 1 = repeatable read (default), 2 = snapshot
  // (read-only; downgraded to repeatable read when MVCC is disabled).
  txn_ = db->Begin(iso == 0   ? IsolationLevel::kReadCommitted
                   : iso == 2 ? IsolationLevel::kSnapshot
                              : IsolationLevel::kRepeatableRead);
  if (obs::OpContext* op = obs::CurrentOp()) op->txn_id = txn_->id();
  std::string out;
  PutFixed64(&out, txn_->id());
  return SendFrame(Opcode::kOk, req.request_id, out);
}

Status Session::HandleCommit(const net::Frame& req, Database* db) {
  if (txn_ == nullptr) {
    return SendError(req.request_id, ErrorCode::kNoTransaction,
                     "commit without a transaction");
  }
  Transaction* txn = txn_;
  txn_ = nullptr;
  if (obs::OpContext* op = obs::CurrentOp()) op->txn_id = txn->id();
  Status st = db->Commit(txn);
  if (!st.ok()) {
    // A failed commit must not leak a lock-holding zombie: roll it back
    // and tell the client the transaction is gone either way.
    if (db->txns()->IsActive(txn->id())) (void)db->Abort(txn);
    txn_aborted_flag_ = true;
    return SendError(req.request_id, net::ErrorCodeFromStatus(st),
                     st.ToString());
  }
  return SendFrame(Opcode::kOk, req.request_id, Slice());
}

Status Session::HandleAbort(const net::Frame& req, Database* db) {
  if (txn_ == nullptr) {
    return SendError(req.request_id, ErrorCode::kNoTransaction,
                     "abort without a transaction");
  }
  Transaction* txn = txn_;
  txn_ = nullptr;
  if (obs::OpContext* op = obs::CurrentOp()) op->txn_id = txn->id();
  Status st = db->Abort(txn);
  if (!st.ok()) {
    return SendError(req.request_id, net::ErrorCodeFromStatus(st),
                     st.ToString());
  }
  return SendFrame(Opcode::kOk, req.request_id, Slice());
}

Status Session::HandleInsert(const net::Frame& req, bool draining, Database* db) {
  Decoder dec(req.payload);
  uint32_t index_id;
  std::string key, record;
  uint16_t unique = 0;
  if (!dec.GetFixed32(&index_id) || !dec.GetLengthPrefixed(&key) ||
      !dec.GetLengthPrefixed(&record) || !dec.GetFixed16(&unique)) {
    return SendError(req.request_id, ErrorCode::kMalformedPayload,
                     "insert payload");
  }
  auto gist_or = db->GetIndex(index_id);
  if (!gist_or.ok()) {
    return SendError(req.request_id, ErrorCode::kUnknownIndex,
                     gist_or.status().ToString());
  }
  Rid rid;
  Status st = InTxn(draining, db, [&](Transaction* txn) -> Status {
    auto rid_or =
        db->InsertRecord(txn, gist_or.value(), key, record, unique != 0);
    if (!rid_or.ok()) return rid_or.status();
    rid = rid_or.value();
    return Status::OK();
  });
  if (!st.ok()) {
    return SendError(req.request_id, net::ErrorCodeFromStatus(st),
                     st.ToString());
  }
  std::string out;
  PutFixed64(&out, rid.Pack());
  return SendFrame(Opcode::kOk, req.request_id, out);
}

Status Session::HandleDelete(const net::Frame& req, bool draining, Database* db) {
  Decoder dec(req.payload);
  uint32_t index_id;
  std::string key;
  uint64_t packed_rid;
  if (!dec.GetFixed32(&index_id) || !dec.GetLengthPrefixed(&key) ||
      !dec.GetFixed64(&packed_rid)) {
    return SendError(req.request_id, ErrorCode::kMalformedPayload,
                     "delete payload");
  }
  auto gist_or = db->GetIndex(index_id);
  if (!gist_or.ok()) {
    return SendError(req.request_id, ErrorCode::kUnknownIndex,
                     gist_or.status().ToString());
  }
  Status st = InTxn(draining, db, [&](Transaction* txn) -> Status {
    return db->DeleteRecord(txn, gist_or.value(), key,
                            Rid::Unpack(packed_rid));
  });
  if (!st.ok()) {
    return SendError(req.request_id, net::ErrorCodeFromStatus(st),
                     st.ToString());
  }
  return SendFrame(Opcode::kOk, req.request_id, Slice());
}

Status Session::HandleSearch(const net::Frame& req, bool draining, Database* db) {
  Decoder dec(req.payload);
  uint32_t index_id, batch_size;
  std::string query;
  if (!dec.GetFixed32(&index_id) || !dec.GetLengthPrefixed(&query) ||
      !dec.GetFixed32(&batch_size)) {
    return SendError(req.request_id, ErrorCode::kMalformedPayload,
                     "search payload");
  }
  if (batch_size == 0) batch_size = kDefaultBatchSize;
  auto gist_or = db->GetIndex(index_id);
  if (!gist_or.ok()) {
    return SendError(req.request_id, ErrorCode::kUnknownIndex,
                     gist_or.status().ToString());
  }
  const bool with_records = (req.flags & net::kFlagWithRecords) != 0;

  uint64_t total = 0;
  std::string batch;       // encoded entries, count prefixed on flush
  uint32_t batch_count = 0;
  Status send_st;          // first transport failure aborts the stream
  auto flush = [&]() -> Status {
    std::string payload;
    PutFixed32(&payload, batch_count);
    payload.append(batch);
    batch.clear();
    batch_count = 0;
    return SendFrame(Opcode::kSearchBatch, req.request_id, payload);
  };

  Status st = InTxn(draining, db, [&](Transaction* txn) -> Status {
    // Stream through a cursor: results go out in batches as the traversal
    // produces them instead of materializing the full set.
    GistCursor cursor(gist_or.value(), txn, query);
    GISTCR_RETURN_IF_ERROR(cursor.Open());
    while (true) {
      SearchResult r;
      bool done = false;
      GISTCR_RETURN_IF_ERROR(cursor.Next(&r, &done));
      if (done) break;
      PutLengthPrefixed(&batch, r.key);
      PutFixed64(&batch, r.rid.Pack());
      if (with_records) {
        auto rec_or = db->ReadRecord(r.rid);
        GISTCR_RETURN_IF_ERROR(rec_or.status());
        PutLengthPrefixed(&batch, rec_or.value());
      }
      batch_count++;
      total++;
      if (batch_count >= batch_size || batch.size() >= kBatchByteLimit) {
        send_st = flush();
        if (!send_st.ok()) return send_st;
      }
    }
    return Status::OK();
  });
  if (!st.ok()) {
    if (!send_st.ok()) return send_st;  // transport is gone; no error frame
    return SendError(req.request_id, net::ErrorCodeFromStatus(st),
                     st.ToString());
  }
  if (batch_count > 0) {
    GISTCR_RETURN_IF_ERROR(flush());
  }
  std::string done_payload;
  PutFixed64(&done_payload, total);
  return SendFrame(Opcode::kSearchDone, req.request_id, done_payload);
}

Status Session::HandleStats(const net::Frame& req, Database* db) {
  // Optional one-byte format selector: 0 (or absent) = JSON, 1 = Prometheus
  // text exposition.
  uint8_t format = 0;
  if (!req.payload.empty()) {
    if (req.payload.size() != 1) {
      return SendError(req.request_id, ErrorCode::kMalformedPayload,
                       "stats payload");
    }
    format = static_cast<uint8_t>(req.payload[0]);
    if (format > 1) {
      return SendError(req.request_id, ErrorCode::kMalformedPayload,
                       "unknown stats format");
    }
  }
  const std::string dump = format == 1 ? db->DumpMetricsPrometheus()
                                       : db->DumpMetrics(/*as_json=*/true);
  return SendFrame(Opcode::kStatsReply, req.request_id, dump);
}

Status Session::HandleInspect(const net::Frame& req, Database* db) {
  if (req.payload.size() != 1) {
    return SendError(req.request_id, ErrorCode::kMalformedPayload,
                     "inspect payload");
  }
  const char* what = nullptr;
  switch (static_cast<net::InspectKind>(req.payload[0])) {
    case net::InspectKind::kSlowOps: what = "slow"; break;
    case net::InspectKind::kWaitGraph: what = "waitgraph"; break;
    case net::InspectKind::kBufferPool: what = "bp"; break;
    case net::InspectKind::kWal: what = "wal"; break;
    case net::InspectKind::kRecovery: what = "recovery"; break;
  }
  if (what == nullptr) {
    return SendError(req.request_id, ErrorCode::kMalformedPayload,
                     "unknown inspect kind");
  }
  auto json_or = db->InspectJson(what);
  if (!json_or.ok()) {
    return SendError(req.request_id,
                     net::ErrorCodeFromStatus(json_or.status()),
                     json_or.status().ToString());
  }
  return SendFrame(Opcode::kInspectReply, req.request_id, json_or.value());
}

bool Session::Process(const ServerRequest& req, Database* db, bool draining,
                      uint64_t request_timeout_ms,
                      const ServerMetrics& metrics) {
  db_ = db;
  metrics_ = &metrics;
  if (req.kind == ServerRequest::Kind::kProtocolError) {
    metrics.protocol_errors->Add(1);
    (void)SendError(req.frame.request_id, req.error, req.error_msg);
    return !req.fatal;
  }

  const net::Frame& f = req.frame;
  metrics.requests->Add(1);
  if (!net::IsRequestOpcode(static_cast<uint8_t>(f.opcode))) {
    metrics.protocol_errors->Add(1);
    (void)SendError(f.request_id, ErrorCode::kBadOpcode,
                    "not a request opcode");
    return true;  // framing is intact; the session survives
  }

  // Queue-wait admission timeout: a request that already waited longer
  // than the budget is answered with a typed error instead of executed.
  if (request_timeout_ms > 0 &&
      obs::NowNanos() - req.enqueue_ns > request_timeout_ms * 1000000ull) {
    metrics.timeouts->Add(1);
    (void)SendError(f.request_id, ErrorCode::kTimeout,
                    "request timed out in the server queue");
    return true;
  }

  GISTCR_TRACE_SCOPE_ARG(TraceNameFor(f.opcode), "rid", f.request_id);
  const uint64_t t0 = obs::NowNanos();
  // Per-request span context: stage timers accumulate into this while the
  // handler runs (lock/latch/walwait/fsync attribution happens deep in the
  // engine via the thread-local installed by OpScope).
  obs::OpContext ctx;
  ctx.request_id = f.request_id;
  ctx.op_name = net::OpcodeName(f.opcode);
  ctx.start_ns = (req.enqueue_ns != 0 && req.enqueue_ns <= t0)
                     ? req.enqueue_ns
                     : t0;
  ctx.Add(obs::Stage::kQueue, t0 - ctx.start_ns);
  obs::OpScope op_scope(&ctx);
  Status st;
  switch (f.opcode) {
    case Opcode::kPing:
      st = SendFrame(Opcode::kPong, f.request_id, f.payload);
      break;
    case Opcode::kBegin:
      st = HandleBegin(f, draining, db);
      break;
    case Opcode::kCommit:
      st = HandleCommit(f, db);
      break;
    case Opcode::kAbort:
      st = HandleAbort(f, db);
      break;
    case Opcode::kInsert:
      st = HandleInsert(f, draining, db);
      break;
    case Opcode::kDelete:
      st = HandleDelete(f, draining, db);
      break;
    case Opcode::kSearch:
      st = HandleSearch(f, draining, db);
      break;
    case Opcode::kStats:
      st = HandleStats(f, db);
      break;
    case Opcode::kInspect:
      st = HandleInspect(f, db);
      break;
    default:
      st = Status::NotSupported("opcode");
      break;
  }
  const uint64_t end_ns = obs::NowNanos();
  const uint64_t dt = end_ns - t0;
  metrics.request_latency->Record(dt);
  const uint8_t op_idx = static_cast<uint8_t>(f.opcode);
  if (op_idx < 10 && metrics.op_count[op_idx] != nullptr) {
    metrics.op_count[op_idx]->Add(1);
    metrics.op_latency[op_idx]->Record(dt);
  }
  // Close the span: whatever end-to-end time was not attributed to a named
  // stage becomes "other", so the stage sum equals the total exactly.
  const uint64_t total = end_ns - ctx.start_ns;
  uint64_t attributed = 0;
  for (size_t s = 0; s < obs::kNumStages; s++) attributed += ctx.stage_ns[s];
  ctx.Add(obs::Stage::kOther, total > attributed ? total - attributed : 0);
  for (size_t s = 0; s < obs::kNumStages; s++) {
    if (metrics.stage[s] != nullptr) metrics.stage[s]->Record(ctx.stage_ns[s]);
  }
  if (metrics.request_total != nullptr) metrics.request_total->Record(total);
  db->slow_ops()->MaybeRecord(ctx, total, st.ok() ? "ok" : "send_failed");
  // st reflects the transport (SendFrame/SendError): if writing the
  // response failed the connection is dead and the event loop will reap
  // it; request-level errors were already reported as error frames.
  return st.ok();
}

}  // namespace gistcr
