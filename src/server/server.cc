#include "server/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <chrono>

#include "db/database.h"
#include "obs/trace.h"

namespace gistcr {

Server::Server(Database* db, ServerOptions opts)
    : db_(db), opts_(std::move(opts)) {
  if (opts_.num_workers == 0) opts_.num_workers = 1;
  if (opts_.max_inflight_per_session == 0) opts_.max_inflight_per_session = 1;
}

Server::~Server() {
  (void)Shutdown();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

Status Server::EpollAdd(int fd, uint64_t tag, bool readable) {
  epoll_event ev;
  ev.events = readable ? static_cast<uint32_t>(EPOLLIN) : 0u;
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IOError("epoll_ctl(ADD)");
  }
  return Status::OK();
}

void Server::EpollDel(int fd) {
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

Status Server::Start() {
  {
    MutexLock l(mu_);
    GISTCR_CHECK(!running_);
  }
  m_.Attach(db_->metrics());
  GISTCR_RETURN_IF_ERROR(
      net::TcpListen(opts_.host, opts_.port, &listener_, &port_));
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return Status::IOError("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) return Status::IOError("eventfd");
  GISTCR_RETURN_IF_ERROR(EpollAdd(listener_.fd(), kListenTag, true));
  GISTCR_RETURN_IF_ERROR(EpollAdd(wake_fd_, kWakeTag, true));
  {
    MutexLock l(mu_);
    running_ = true;
  }
  loop_thread_ = std::thread([this] { EventLoop(); });
  for (uint32_t i = 0; i < opts_.num_workers; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void Server::Wake() {
  uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

size_t Server::active_sessions() {
  MutexLock l(mu_);
  return sessions_.size();
}

Status Server::Shutdown() {
  {
    MutexLock l(mu_);
    if (!running_ || shutdown_done_) return Status::OK();
    shutdown_done_ = true;
    draining_ = true;
  }
  // No maintenance checkpoint may start while sessions drain; the final
  // checkpoint below is the explicit one.
  db_->PrepareShutdown();
  Wake();  // event loop closes the listener and starts reaping idle conns
  {
    MutexLock l(mu_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(opts_.drain_timeout_ms);
    while (!sessions_.empty()) {
      if (!sessions_cv_.WaitUntil(mu_, deadline)) break;  // drain timed out
    }
    force_close_ = true;
  }
  Wake();
  {
    // Force-abort converges: every surviving transaction is rolled back as
    // soon as its session is idle, which also unblocks any request waiting
    // on one of its locks.
    MutexLock l(mu_);
    while (!sessions_.empty()) sessions_cv_.Wait(mu_);
    stop_workers_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
  workers_.clear();
  {
    MutexLock l(mu_);
    stop_loop_ = true;
  }
  Wake();
  loop_thread_.join();
  {
    MutexLock l(mu_);
    running_ = false;
  }
  // All sessions are gone; leave a clean recovery point behind.
  return db_->Checkpoint();
}

void Server::AcceptAll() {
  while (true) {
    net::Socket sock;
    Status st = net::TcpAccept(listener_.fd(), &sock);
    if (st.IsBusy()) return;  // accept queue drained
    if (!st.ok()) return;     // transient; epoll will re-report
    MutexLock l(mu_);
    if (draining_) continue;  // Socket destructor closes the connection
    const uint64_t id = next_session_id_++;
    auto session = std::make_unique<Session>(id, std::move(sock));
    Session* s = session.get();
    sessions_[id] = std::move(session);
    if (!EpollAdd(s->fd(), id, true).ok()) {
      sessions_.erase(id);
      continue;
    }
    s->in_epoll = true;
    m_.accepts->Add(1);
    m_.active_connections->Set(static_cast<double>(sessions_.size()));
  }
}

void Server::ScheduleLocked(Session* s) {
  if (!s->scheduled && !s->pending.empty()) {
    s->scheduled = true;
    runq_.push_back(s);
    work_cv_.NotifyOne();
  }
}

void Server::HandleReadable(Session* s) {
  char buf[64 * 1024];
  bool eof = false;
  bool fatal_frame = false;
  std::vector<ServerRequest> parsed;
  while (true) {
    size_t n = 0;
    Status st = net::ReadSome(s->fd(), buf, sizeof(buf), &n);
    if (st.IsBusy()) break;  // drained the socket buffer
    if (!st.ok() || n == 0) {
      eof = true;
      break;
    }
    m_.bytes_in->Add(n);
    s->reader.Feed(buf, n);
    while (true) {
      net::Frame f;
      const net::FrameReader::Result r = s->reader.Next(&f);
      if (r == net::FrameReader::Result::kFrame) {
        ServerRequest req;
        req.kind = ServerRequest::Kind::kFrame;
        req.frame = std::move(f);
        req.enqueue_ns = obs::NowNanos();
        parsed.push_back(std::move(req));
        continue;
      }
      if (r == net::FrameReader::Result::kNeedMore) break;
      // Framing poisoned: the length field cannot be trusted, so the
      // stream cannot be resynchronized — reply a typed error and close.
      ServerRequest req;
      req.kind = ServerRequest::Kind::kProtocolError;
      req.fatal = true;
      req.enqueue_ns = obs::NowNanos();
      switch (r) {
        case net::FrameReader::Result::kBadVersion:
          req.error = net::ErrorCode::kBadVersion;
          req.error_msg = "unsupported protocol version";
          break;
        case net::FrameReader::Result::kTooLarge:
          req.error = net::ErrorCode::kFrameTooLarge;
          req.error_msg = "frame exceeds request size cap";
          break;
        default:
          req.error = net::ErrorCode::kMalformedFrame;
          req.error_msg = "bad magic or undersized frame";
          break;
      }
      parsed.push_back(std::move(req));
      fatal_frame = true;
      break;
    }
    if (fatal_frame) break;
  }

  MutexLock l(mu_);
  for (auto& req : parsed) {
    s->pending.push_back(std::move(req));
    total_pending_++;
  }
  m_.queue_depth->Set(static_cast<double>(total_pending_));
  if (eof) s->closed = true;
  if (fatal_frame && s->in_epoll) {
    // Stop reading a poisoned stream; the worker still sends the typed
    // error before the session is reaped.
    EpollDel(s->fd());
    s->in_epoll = false;
  }
  if (!s->closed &&
      s->pending.size() >= opts_.max_inflight_per_session && !s->paused &&
      s->in_epoll) {
    epoll_event ev;
    ev.events = 0;  // stay registered, report nothing: backpressure
    ev.data.u64 = s->id();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, s->fd(), &ev) == 0) {
      s->paused = true;
      m_.backpressure_pauses->Add(1);
    }
  }
  ScheduleLocked(s);
  if (s->closed && !s->scheduled) ScanSessionsLocked();
}

void Server::FinalizeLocked(uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  Session* s = it->second.get();
  total_pending_ -= static_cast<int64_t>(s->pending.size());
  s->pending.clear();
  m_.queue_depth->Set(static_cast<double>(total_pending_));
  if (s->in_epoll) {
    EpollDel(s->fd());
    s->in_epoll = false;
  }
  s->AbortOpenTxn(db_, m_);  // abort-on-disconnect / forced drain
  sessions_.erase(it);       // closes the socket
  m_.active_connections->Set(static_cast<double>(sessions_.size()));
  if (sessions_.empty()) sessions_cv_.NotifyAll();
}

void Server::ScanSessionsLocked() {
  if (draining_ && !listener_closed_) {
    EpollDel(listener_.fd());
    listener_.Close();
    listener_closed_ = true;
  }
  std::vector<uint64_t> reap;
  for (auto& [id, sp] : sessions_) {
    Session* s = sp.get();
    if (s->scheduled) continue;  // a worker owns it; re-scanned on wake
    if (s->closed && s->pending.empty()) {
      reap.push_back(id);
      continue;
    }
    if (s->closed) {
      // EOF with queued requests: the client cannot read the responses
      // any more, drop the queue and reap.
      reap.push_back(id);
      continue;
    }
    if (force_close_ && s->pending.empty()) {
      reap.push_back(id);
      continue;
    }
    if (draining_ && s->pending.empty() && !s->has_txn()) {
      // Idle and transaction-less: nothing to drain.
      reap.push_back(id);
      continue;
    }
    if (force_close_ && s->in_epoll) {
      // Stop reading; let the queued requests finish, then reap.
      EpollDel(s->fd());
      s->in_epoll = false;
    }
  }
  for (uint64_t id : reap) FinalizeLocked(id);
}

void Server::EventLoop() {
  epoll_event evs[64];
  while (true) {
    const int n = ::epoll_wait(epoll_fd_, evs, 64, -1);
    if (n < 0) continue;  // EINTR
    for (int i = 0; i < n; i++) {
      const uint64_t tag = evs[i].data.u64;
      if (tag == kWakeTag) {
        uint64_t junk;
        while (::read(wake_fd_, &junk, sizeof(junk)) > 0) {
        }
        continue;
      }
      if (tag == kListenTag) {
        AcceptAll();
        continue;
      }
      Session* s;
      {
        MutexLock l(mu_);
        auto it = sessions_.find(tag);
        if (it == sessions_.end()) continue;  // reaped already
        s = it->second.get();
        if (s->closed || !s->in_epoll) continue;
      }
      if ((evs[i].events & (EPOLLERR | EPOLLHUP)) != 0 &&
          (evs[i].events & EPOLLIN) == 0) {
        MutexLock l(mu_);
        s->closed = true;
        if (!s->scheduled) ScanSessionsLocked();
        continue;
      }
      // Reads happen outside mu_ (the event loop is the only reader of
      // this fd); queue mutation re-acquires it.
      HandleReadable(s);
    }
    MutexLock l(mu_);
    if (stop_loop_) return;
    // Workers Wake() the loop after closing a session; reap here so a
    // fatal protocol error or mid-work EOF aborts the orphaned
    // transaction promptly (not just during drain).
    ScanSessionsLocked();
  }
}

void Server::WorkerLoop() {
  MutexLock l(mu_);
  while (true) {
    while (!stop_workers_ && runq_.empty()) work_cv_.Wait(mu_);
    if (stop_workers_) return;
    Session* s = runq_.front();
    runq_.pop_front();
    while (!s->pending.empty() && !s->closed) {
      ServerRequest req = std::move(s->pending.front());
      s->pending.pop_front();
      total_pending_--;
      m_.queue_depth->Set(static_cast<double>(total_pending_));
      if (s->paused && s->in_epoll && !s->closed &&
          s->pending.size() <= opts_.max_inflight_per_session / 2) {
        epoll_event ev;
        ev.events = EPOLLIN;
        ev.data.u64 = s->id();
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, s->fd(), &ev) == 0) {
          s->paused = false;
        }
      }
      const bool drain_now = draining_;
      l.Unlock();
      const bool keep =
          s->Process(req, db_, drain_now, opts_.request_timeout_ms, m_);
      l.Lock();
      if (!keep) {
        s->closed = true;
      }
    }
    s->scheduled = false;
    if (s->closed || draining_) {
      // The event loop owns teardown; hand the session back to it.
      Wake();
    }
  }
}

}  // namespace gistcr
