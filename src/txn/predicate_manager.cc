#include "txn/predicate_manager.h"

#include <algorithm>

namespace gistcr {

PredicateManager::PredicateManager() { AttachMetrics(nullptr); }

void PredicateManager::AttachMetrics(obs::MetricsRegistry* reg) {
  reg = obs::MetricsRegistry::OrFallback(reg);
  m_attaches_ = reg->GetCounter("pred.attaches");
  m_conflict_checks_ = reg->GetCounter("pred.conflict_checks");
  m_predicates_scanned_ = reg->GetCounter("pred.predicates_scanned");
  m_replications_ = reg->GetCounter("pred.replications");
  m_percolations_ = reg->GetCounter("pred.percolations");
}

void PredicateManager::AttachLocked(PageId node, TxnId txn, uint64_t op_id,
                                    PredKind kind, Slice pred) {
  auto& lst = by_node_[node];
  for (const auto& a : lst) {
    if (a.txn == txn && a.op_id == op_id && a.kind == kind &&
        Slice(a.pred) == pred) {
      return;  // already attached (e.g. a scan revisiting after a split)
    }
  }
  lst.push_back(PredAttachment{next_id_++, txn, op_id, kind, pred.ToString()});
  auto& nodes = by_txn_[txn];
  if (nodes.empty() || nodes.back() != node) nodes.push_back(node);
  stats_.attaches++;
  m_attaches_->Add(1);
}

void PredicateManager::Attach(PageId node, TxnId txn, uint64_t op_id,
                              PredKind kind, Slice pred) {
  MutexLock l(mu_);
  AttachLocked(node, txn, op_id, kind, pred);
}

std::vector<TxnId> PredicateManager::AttachAndFindConflicts(
    PageId node, TxnId txn, uint64_t op_id, PredKind kind, Slice pred,
    const ConflictFn& conflicts) {
  MutexLock l(mu_);
  std::vector<TxnId> owners;
  auto& lst = by_node_[node];
  stats_.conflict_checks++;
  m_conflict_checks_->Add(1);
  for (const auto& a : lst) {
    stats_.predicates_scanned++;
    m_predicates_scanned_->Add(1);
    if (a.txn == txn) continue;
    if (conflicts(a)) {
      if (std::find(owners.begin(), owners.end(), a.txn) == owners.end()) {
        owners.push_back(a.txn);
      }
    }
  }
  AttachLocked(node, txn, op_id, kind, pred);
  return owners;
}

std::vector<TxnId> PredicateManager::FindConflicts(PageId node, TxnId self,
                                                   const ConflictFn& conflicts) {
  MutexLock l(mu_);
  std::vector<TxnId> owners;
  auto it = by_node_.find(node);
  stats_.conflict_checks++;
  m_conflict_checks_->Add(1);
  if (it == by_node_.end()) return owners;
  for (const auto& a : it->second) {
    stats_.predicates_scanned++;
    m_predicates_scanned_->Add(1);
    if (a.txn == self) continue;
    if (conflicts(a)) {
      if (std::find(owners.begin(), owners.end(), a.txn) == owners.end()) {
        owners.push_back(a.txn);
      }
    }
  }
  return owners;
}

void PredicateManager::DetachOp(TxnId txn, uint64_t op_id) {
  MutexLock l(mu_);
  auto bt = by_txn_.find(txn);
  if (bt == by_txn_.end()) return;
  for (PageId node : bt->second) {
    auto it = by_node_.find(node);
    if (it == by_node_.end()) continue;
    it->second.remove_if([&](const PredAttachment& a) {
      return a.txn == txn && a.op_id == op_id &&
             (a.kind == PredKind::kInsert || a.kind == PredKind::kUniqueProbe);
    });
    if (it->second.empty()) by_node_.erase(it);
  }
}

void PredicateManager::ReleaseTxn(TxnId txn) {
  MutexLock l(mu_);
  auto bt = by_txn_.find(txn);
  if (bt == by_txn_.end()) return;
  for (PageId node : bt->second) {
    auto it = by_node_.find(node);
    if (it == by_node_.end()) continue;
    it->second.remove_if(
        [&](const PredAttachment& a) { return a.txn == txn; });
    if (it->second.empty()) by_node_.erase(it);
  }
  by_txn_.erase(bt);
}

void PredicateManager::ReplicateOnSplit(
    PageId orig, PageId new_node,
    const std::function<bool(const PredAttachment&)>& consistent_with_new_bp) {
  MutexLock l(mu_);
  auto it = by_node_.find(orig);
  if (it == by_node_.end()) return;
  // Collect first: AttachLocked mutates by_node_ and could invalidate `it`.
  std::vector<const PredAttachment*> to_copy;
  for (const auto& a : it->second) {
    if (consistent_with_new_bp(a)) to_copy.push_back(&a);
  }
  std::vector<PredAttachment> copies;
  copies.reserve(to_copy.size());
  for (const auto* a : to_copy) copies.push_back(*a);
  for (const auto& a : copies) {
    AttachLocked(new_node, a.txn, a.op_id, a.kind, a.pred);
    stats_.replications++;
    m_replications_->Add(1);
  }
}

void PredicateManager::Percolate(
    PageId parent, PageId child,
    const std::function<bool(const PredAttachment&)>& should_percolate) {
  MutexLock l(mu_);
  auto it = by_node_.find(parent);
  if (it == by_node_.end()) return;
  std::vector<PredAttachment> copies;
  for (const auto& a : it->second) {
    if (should_percolate(a)) copies.push_back(a);
  }
  for (const auto& a : copies) {
    AttachLocked(child, a.txn, a.op_id, a.kind, a.pred);
    stats_.percolations++;
    m_percolations_->Add(1);
  }
}

std::vector<PredAttachment> PredicateManager::GetAttached(PageId node) {
  MutexLock l(mu_);
  auto it = by_node_.find(node);
  if (it == by_node_.end()) return {};
  return std::vector<PredAttachment>(it->second.begin(), it->second.end());
}

size_t PredicateManager::TotalAttachments() {
  MutexLock l(mu_);
  size_t n = 0;
  for (auto& [pid, lst] : by_node_) {
    (void)pid;
    n += lst.size();
  }
  return n;
}

PredicateManager::Stats PredicateManager::GetStats() {
  MutexLock l(mu_);
  return stats_;
}

void PredicateManager::ResetStats() {
  MutexLock l(mu_);
  stats_ = Stats();
}

}  // namespace gistcr
