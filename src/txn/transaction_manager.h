#ifndef GISTCR_TXN_TRANSACTION_MANAGER_H_
#define GISTCR_TXN_TRANSACTION_MANAGER_H_

#include <memory>
#include <unordered_map>

#include "common/mutex.h"
#include "mvcc/mvcc_manager.h"
#include "txn/lock_manager.h"
#include "txn/predicate_manager.h"
#include "txn/transaction.h"
#include "util/status.h"
#include "wal/log_manager.h"

namespace gistcr {

/// Applies the *undo* action of a log record (Table 1 right column) on
/// behalf of rollback, writing the corresponding CLR through the
/// transaction's backchain. Implemented by the Database facade, which
/// routes to the GiST / heap undo code.
class UndoApplier {
 public:
  virtual ~UndoApplier() = default;
  virtual Status UndoRecord(Transaction* txn, const LogRecord& rec) = 0;
};

/// Transaction lifecycle: begin / commit (log force) / abort (backchain
/// rollback with CLRs) / savepoints with partial rollback. Owns the
/// transaction table; coordinates the lock and predicate managers at end
/// of transaction.
class TransactionManager {
 public:
  TransactionManager(LogManager* log, LockManager* locks,
                     PredicateManager* preds);
  GISTCR_DISALLOW_COPY_AND_ASSIGN(TransactionManager);

  void SetUndoApplier(UndoApplier* applier) { applier_ = applier; }

  /// Enables snapshot-read support: Begin(kSnapshot) registers with the
  /// oracle, Commit stamps versions before forcing the log. Null disables
  /// (Begin(kSnapshot) then falls back to kRepeatableRead).
  void SetMvcc(MvccManager* mvcc) { mvcc_ = mvcc; }

  /// Instant restart: while loser undo is still running concurrently with
  /// new work, the MVCC version store has not finished retracting the
  /// losers' version records, so Begin(kSnapshot) degrades to
  /// kRepeatableRead (which sees only the locked, page-level truth).
  /// Cleared by the recovery thread once undo completes.
  void SetRecoveryUndoActive(bool active) {
    recovery_undo_active_.store(active, std::memory_order_release);
  }
  bool recovery_undo_active() const {
    return recovery_undo_active_.load(std::memory_order_acquire);
  }

  /// Re-points lifecycle metrics at \p reg (null: process fallback). Call
  /// before concurrent use; the Database facade does so at init.
  void AttachMetrics(obs::MetricsRegistry* reg);

  /// Starts a transaction: assigns an id, X-locks the txn's own id (the
  /// handle other operations block on when they "block on a predicate",
  /// paper section 10.3), logs Begin.
  ///
  /// kSnapshot transactions skip all of that: no txn-id lock (nothing ever
  /// blocks on a reader that holds nothing), no Begin record (they write
  /// no log), no transaction-table entry (they never checkpoint or
  /// recover) — just a snapshot stamp from the oracle.
  Transaction* Begin(IsolationLevel iso = IsolationLevel::kRepeatableRead);

  /// Commit: log Commit, force the log, release predicates and locks, log
  /// End.
  Status Commit(Transaction* txn);

  /// Abort: log Abort, undo the backchain writing CLRs (logical undo for
  /// leaf-entry records; NTAs are skipped via their NTA-End undo_next),
  /// log End, release predicates and locks.
  Status Abort(Transaction* txn);

  /// Establishes / rolls back to a savepoint (partial rollback; the txn
  /// stays active and keeps its locks, paper section 10.2).
  Status Savepoint(Transaction* txn, const std::string& name);
  Status RollbackToSavepoint(Transaction* txn, const std::string& name);

  /// Appends \p rec on behalf of \p txn: fills txn_id/prev_lsn, maintains
  /// the backchain head and first_lsn.
  Status AppendTxnLog(Transaction* txn, LogRecord* rec);

  /// Nested top action bracket (paper section 9.1): remember the backchain
  /// head, run the structure modification, then close with an NTA-End
  /// whose undo_next jumps over the action.
  Lsn NtaBegin(Transaction* txn) const { return txn->last_lsn(); }
  Status NtaEnd(Transaction* txn, Lsn begin_lsn);

  /// True while \p txn_id is in the table and active. Unknown ids are
  /// treated as terminated (their effects were resolved by recovery).
  bool IsActive(TxnId txn_id);

  /// first_lsn of the oldest active transaction, or kInvalidLsn if none —
  /// the Commit_LSN test that lets garbage collection skip per-entry
  /// checks (paper section 7.1, footnote 11).
  Lsn OldestActiveFirstLsn();

  /// Active transaction table snapshot for fuzzy checkpoints.
  std::vector<std::pair<TxnId, Lsn>> ActiveTxns();

  /// Restart support: recovery re-creates loser transactions to drive
  /// their undo through the normal rollback machinery.
  Transaction* ResurrectForUndo(TxnId id, Lsn last_lsn);

  /// Restart support: analysis pass hands back the next fresh txn id.
  void SetNextTxnId(TxnId next);
  TxnId NextTxnIdForCheckpoint();

  LockManager* locks() { return locks_; }
  PredicateManager* preds() { return preds_; }
  LogManager* log() { return log_; }

 private:
  /// Undoes txn's updates with LSN > stop_lsn (kInvalidLsn: all of them).
  Status UndoTo(Transaction* txn, Lsn stop_lsn);
  void ReleaseAllFor(Transaction* txn);

  /// Ends a kSnapshot transaction: unregisters the snapshot, frees the
  /// descriptor. Shared by Commit and Abort — the only difference for a
  /// transaction that wrote nothing is the reported final state and which
  /// lifecycle counter ticks, which \p committed selects.
  Status EndSnapshotTxn(Transaction* txn, bool committed);

  LogManager* log_;
  LockManager* locks_;
  PredicateManager* preds_;
  UndoApplier* applier_ = nullptr;
  MvccManager* mvcc_ = nullptr;
  std::atomic<bool> recovery_undo_active_{false};

  obs::Counter* m_begins_ = nullptr;
  obs::Counter* m_commits_ = nullptr;
  obs::Counter* m_aborts_ = nullptr;
  obs::Histogram* m_commit_ns_ = nullptr;  ///< includes the log force

  Mutex mu_{GISTCR_LOCK_RANK(kTxnManager, "txn.mu")};
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> table_
      GISTCR_GUARDED_BY(mu_);
  /// Snapshot readers live apart from table_ so checkpoints, ActiveTxns
  /// and OldestActiveFirstLsn never see them: they have no log presence.
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> snapshot_table_
      GISTCR_GUARDED_BY(mu_);
  TxnId next_txn_id_ GISTCR_GUARDED_BY(mu_) = 1;
};

}  // namespace gistcr

#endif  // GISTCR_TXN_TRANSACTION_MANAGER_H_
