#include "txn/transaction_manager.h"

#include <algorithm>

#include "obs/trace.h"
#include "storage/fault_injector.h"

namespace gistcr {

TransactionManager::TransactionManager(LogManager* log, LockManager* locks,
                                       PredicateManager* preds)
    : log_(log), locks_(locks), preds_(preds) {
  AttachMetrics(nullptr);
}

void TransactionManager::AttachMetrics(obs::MetricsRegistry* reg) {
  reg = obs::MetricsRegistry::OrFallback(reg);
  m_begins_ = reg->GetCounter("txn.begins");
  m_commits_ = reg->GetCounter("txn.commits");
  m_aborts_ = reg->GetCounter("txn.aborts");
  m_commit_ns_ = reg->GetHistogram("txn.commit_ns");
}

Transaction* TransactionManager::Begin(IsolationLevel iso) {
  if (iso == IsolationLevel::kSnapshot &&
      (mvcc_ == nullptr || recovery_undo_active())) {
    // Snapshot reads disabled (or instant-restart undo is still
    // retracting loser version records): degrade to the full hybrid
    // protocol, whose locks are consistent with the losers' held locks.
    iso = IsolationLevel::kRepeatableRead;
  }
  TxnId id;
  Transaction* txn;
  {
    MutexLock l(mu_);
    id = next_txn_id_++;
    auto t = std::make_unique<Transaction>(id, iso);
    txn = t.get();
    if (iso == IsolationLevel::kSnapshot) {
      snapshot_table_[id] = std::move(t);
    } else {
      table_[id] = std::move(t);
    }
  }
  if (iso == IsolationLevel::kSnapshot) {
    // Read-only snapshot path: no txn-id lock (nothing can need to block
    // on a reader that holds nothing), no Begin record (nothing to
    // recover). The acceptance bar is literal: zero lock-manager calls.
    txn->set_snapshot_lsn(mvcc_->BeginSnapshot(id));
    m_begins_->Add(1);
    return txn;
  }
  // Every transaction X-locks its own id at startup so that others can
  // block on its termination (paper section 10.3).
  Status st = locks_->Lock(id, LockName{LockSpace::kTxn, id},
                           LockMode::kExclusive);
  GISTCR_CHECK(st.ok());
  LogRecord rec;
  rec.type = LogRecordType::kBegin;
  st = AppendTxnLog(txn, &rec);
  GISTCR_CHECK(st.ok());
  m_begins_->Add(1);
  return txn;
}

Status TransactionManager::EndSnapshotTxn(Transaction* txn, bool committed) {
  txn->set_state(committed ? TxnState::kCommitted : TxnState::kAborted);
  mvcc_->EndSnapshot(txn->id());
  (committed ? m_commits_ : m_aborts_)->Add(1);
  MutexLock l(mu_);
  snapshot_table_.erase(txn->id());
  return Status::OK();
}

Status TransactionManager::AppendTxnLog(Transaction* txn, LogRecord* rec) {
  rec->txn_id = txn->id();
  rec->prev_lsn = txn->last_lsn();
  GISTCR_RETURN_IF_ERROR(log_->Append(rec));
  txn->set_last_lsn(rec->lsn);
  if (txn->first_lsn() == kInvalidLsn) txn->set_first_lsn(rec->lsn);
  return Status::OK();
}

Status TransactionManager::NtaEnd(Transaction* txn, Lsn begin_lsn) {
  LogRecord rec;
  rec.type = LogRecordType::kNtaEnd;
  rec.undo_next = begin_lsn;
  return AppendTxnLog(txn, &rec);
}

void TransactionManager::ReleaseAllFor(Transaction* txn) {
  preds_->ReleaseTxn(txn->id());
  locks_->ReleaseAll(txn->id());
}

Status TransactionManager::Commit(Transaction* txn) {
  GISTCR_CHECK(txn->state() == TxnState::kActive);
  if (txn->is_snapshot()) return EndSnapshotTxn(txn, /*committed=*/true);
  GISTCR_TRACE_SCOPE("txn.commit");
  const uint64_t t0 = obs::NowNanos();
  LogRecord commit;
  commit.type = LogRecordType::kCommit;
  // Stamp this transaction's versions with the commit LSN *before* the
  // durable fan-out can cover it: a snapshot stamp S only reaches >=
  // commit.lsn once the flusher broadcasts a covering durable LSN, and
  // AdvanceDurable drains stamping epochs opened before the broadcast —
  // so the epoch must open *before* the Commit record becomes flushable
  // (a concurrent waiter's force, or flush-ahead pressure, can batch and
  // fsync it the instant Append returns, well before our own Flush call).
  if (mvcc_ != nullptr) mvcc_->BeginStamping(txn->id());
  Status append_st = AppendTxnLog(txn, &commit);
  if (!append_st.ok()) {
    if (mvcc_ != nullptr) mvcc_->CancelStamping(txn->id());
    return append_st;
  }
  if (mvcc_ != nullptr) mvcc_->StampCommit(txn->id(), commit.lsn);
  // Commit appended but not forced: recovery must treat the txn as a loser
  // unless the record happens to be durable already.
  GISTCR_CRASHPOINT("txn.commit.before_log_force");
  GISTCR_RETURN_IF_ERROR(log_->Flush(commit.lsn));  // force at commit
  // Commit durable; End record and lock release still pending.
  GISTCR_CRASHPOINT("txn.commit.after_log_force");
  txn->set_state(TxnState::kCommitted);
  ReleaseAllFor(txn);
  LogRecord end;
  end.type = LogRecordType::kEnd;
  GISTCR_RETURN_IF_ERROR(AppendTxnLog(txn, &end));
  m_commit_ns_->Record(obs::NowNanos() - t0);
  m_commits_->Add(1);
  MutexLock l(mu_);
  table_.erase(txn->id());
  return Status::OK();
}

Status TransactionManager::UndoTo(Transaction* txn, Lsn stop_lsn) {
  Lsn cur = txn->last_lsn();
  while (cur != kInvalidLsn && cur > stop_lsn) {
    LogRecord rec;
    GISTCR_RETURN_IF_ERROR(log_->ReadRecord(cur, &rec));
    switch (rec.type) {
      case LogRecordType::kClr:
      case LogRecordType::kNtaEnd:
        // Already-compensated work / committed nested top action: jump the
        // backchain over it.
        cur = rec.undo_next;
        break;
      case LogRecordType::kBegin:
        cur = kInvalidLsn;
        break;
      case LogRecordType::kAbort:
      case LogRecordType::kCommit:
      case LogRecordType::kEnd:
        cur = rec.prev_lsn;
        break;
      default:
        GISTCR_CHECK(applier_ != nullptr);
        GISTCR_RETURN_IF_ERROR(applier_->UndoRecord(txn, rec));
        cur = rec.prev_lsn;
        break;
    }
  }
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  GISTCR_CHECK(txn->state() == TxnState::kActive);
  if (txn->is_snapshot()) return EndSnapshotTxn(txn, /*committed=*/false);
  LogRecord abort_rec;
  abort_rec.type = LogRecordType::kAbort;
  GISTCR_RETURN_IF_ERROR(AppendTxnLog(txn, &abort_rec));
  // Roll the pages back first: the UndoInsert/UndoDelete hooks inside
  // UndoRecord retract each version record in step with its page undo, so
  // a concurrent lock-free snapshot scan always finds version records
  // matching the page state it validated. Erasing the records up front
  // would let the scan see this txn's still-present inserts as "ancient"
  // (dirty read) and its still-marked deletes as committed (lost row).
  GISTCR_RETURN_IF_ERROR(UndoTo(txn, kInvalidLsn));
  // Pages clean: now forget the pending-stamp bookkeeping (and any
  // leftovers the per-op hooks already made no-ops).
  if (mvcc_ != nullptr) mvcc_->DropAborted(txn->id());
  txn->set_state(TxnState::kAborted);
  ReleaseAllFor(txn);
  LogRecord end;
  end.type = LogRecordType::kEnd;
  GISTCR_RETURN_IF_ERROR(AppendTxnLog(txn, &end));
  m_aborts_->Add(1);
  MutexLock l(mu_);
  table_.erase(txn->id());
  return Status::OK();
}

Status TransactionManager::Savepoint(Transaction* txn,
                                     const std::string& name) {
  GISTCR_CHECK(txn->state() == TxnState::kActive);
  txn->savepoints().push_back({name, txn->last_lsn()});
  return Status::OK();
}

Status TransactionManager::RollbackToSavepoint(Transaction* txn,
                                               const std::string& name) {
  GISTCR_CHECK(txn->state() == TxnState::kActive);
  auto& sps = txn->savepoints();
  auto it = std::find_if(sps.rbegin(), sps.rend(),
                         [&](const Transaction::SavepointInfo& s) {
                           return s.name == name;
                         });
  if (it == sps.rend()) {
    return Status::NotFound("savepoint " + name);
  }
  const Lsn target = it->lsn;
  GISTCR_RETURN_IF_ERROR(UndoTo(txn, target));
  // Later savepoints are invalidated; the target savepoint survives so the
  // rollback can be repeated.
  sps.erase(it.base(), sps.end());
  return Status::OK();
}

bool TransactionManager::IsActive(TxnId txn_id) {
  if (txn_id == kInvalidTxnId) return false;
  MutexLock l(mu_);
  auto it = table_.find(txn_id);
  return it != table_.end() && it->second->state() == TxnState::kActive;
}

Lsn TransactionManager::OldestActiveFirstLsn() {
  MutexLock l(mu_);
  Lsn oldest = kInvalidLsn;
  for (auto& [id, txn] : table_) {
    (void)id;
    if (txn->state() != TxnState::kActive) continue;
    const Lsn f = txn->first_lsn();
    if (f == kInvalidLsn) continue;
    if (oldest == kInvalidLsn || f < oldest) oldest = f;
  }
  return oldest;
}

std::vector<std::pair<TxnId, Lsn>> TransactionManager::ActiveTxns() {
  MutexLock l(mu_);
  std::vector<std::pair<TxnId, Lsn>> out;
  for (auto& [id, txn] : table_) {
    if (txn->state() == TxnState::kActive) {
      out.emplace_back(id, txn->last_lsn());
    }
  }
  return out;
}

Transaction* TransactionManager::ResurrectForUndo(TxnId id, Lsn last_lsn) {
  MutexLock l(mu_);
  auto t = std::make_unique<Transaction>(id, IsolationLevel::kRepeatableRead);
  t->set_last_lsn(last_lsn);
  Transaction* txn = t.get();
  table_[id] = std::move(t);
  if (id >= next_txn_id_) next_txn_id_ = id + 1;
  return txn;
}

void TransactionManager::SetNextTxnId(TxnId next) {
  MutexLock l(mu_);
  if (next > next_txn_id_) next_txn_id_ = next;
}

TxnId TransactionManager::NextTxnIdForCheckpoint() {
  MutexLock l(mu_);
  return next_txn_id_;
}

}  // namespace gistcr
