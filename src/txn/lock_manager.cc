#include "txn/lock_manager.h"

#include <chrono>

#include "obs/op_context.h"

namespace gistcr {

namespace {

bool Compatible(LockMode a, LockMode b) {
  return a == LockMode::kShared && b == LockMode::kShared;
}

/// Bounded cv waits: a blocked transaction re-runs deadlock detection on
/// every wakeup, so even a detection scan that raced with grants cannot
/// cause a permanent hang — a stable cycle is re-found within one period.
constexpr auto kWaitSlice = std::chrono::milliseconds(20);

}  // namespace

LockManager::LockManager() { AttachMetrics(nullptr); }

void LockManager::AttachMetrics(obs::MetricsRegistry* reg) {
  reg = obs::MetricsRegistry::OrFallback(reg);
  m_wait_ns_[static_cast<size_t>(LockSpace::kRecord)] =
      reg->GetHistogram("lock.record_wait_ns");
  m_wait_ns_[static_cast<size_t>(LockSpace::kNode)] =
      reg->GetHistogram("lock.node_wait_ns");
  m_wait_ns_[static_cast<size_t>(LockSpace::kTxn)] =
      reg->GetHistogram("lock.txn_wait_ns");
  m_deadlocks_ = reg->GetCounter("lock.deadlocks");
  m_acquires_ = reg->GetCounter("lock.acquires");
}

void LockManager::RecordWait(obs::Histogram* wait_hist,
                             uint64_t wait_start) {
  if (wait_start == 0) return;
  const uint64_t waited = obs::NowNanos() - wait_start;
  wait_hist->Record(waited);
  obs::AddStage(obs::Stage::kLock, waited);
}

void LockManager::TryGrantLocked(LockState* state) {
  auto& q = state->queue;
  // 1. Upgrade conversion: a granted S that wants X converts when it is
  //    the sole granted request.
  Request* upgrader = nullptr;
  size_t granted = 0;
  for (auto& r : q) {
    if (r.granted) {
      granted++;
      if (r.upgrading) upgrader = &r;
    }
  }
  if (upgrader != nullptr) {
    if (granted == 1) {
      upgrader->mode = LockMode::kExclusive;
      upgrader->upgrading = false;
    }
    // While an upgrade is pending, grant nothing new (it acts as X).
    return;
  }
  // 2. FIFO grant: grant waiting requests in order; stop at the first one
  //    that conflicts with the granted set.
  for (auto& r : q) {
    if (r.granted) continue;
    bool ok = true;
    for (auto& g : q) {
      if (!g.granted || g.txn == r.txn) continue;
      if (!Compatible(r.mode, g.mode) || g.upgrading) {
        ok = false;
        break;
      }
    }
    if (!ok) break;
    r.granted = true;
  }
}

void LockManager::RecordHeld(TxnId txn, LockName name) {
  TxnShard& ts = TxnShardFor(txn);
  MutexLock l(ts.mu);
  ts.held[txn].insert({static_cast<uint8_t>(name.space), name.key});
}

void LockManager::ForgetHeld(TxnId txn, LockName name) {
  TxnShard& ts = TxnShardFor(txn);
  MutexLock l(ts.mu);
  auto it = ts.held.find(txn);
  if (it == ts.held.end()) return;
  it->second.erase({static_cast<uint8_t>(name.space), name.key});
  if (it->second.empty()) ts.held.erase(it);
}

void LockManager::SetPending(TxnId txn, LockName name) {
  MutexLock l(pending_mu_);
  pending_[txn] = name;
}

void LockManager::ClearPending(TxnId txn) {
  MutexLock l(pending_mu_);
  pending_.erase(txn);
}

void LockManager::CollectWaitsFor(TxnId waiter,
                                  std::unordered_set<TxnId>* out) {
  LockName name;
  {
    MutexLock l(pending_mu_);
    auto it = pending_.find(waiter);
    if (it == pending_.end()) return;
    name = it->second;
  }
  Shard& sh = ShardFor(name);
  MutexLock l(sh.mu);
  auto tit = sh.table.find(name);
  if (tit == sh.table.end()) return;
  auto& q = tit->second.queue;
  auto me = q.end();
  for (auto it = q.begin(); it != q.end(); ++it) {
    if (it->txn == waiter && (!it->granted || it->upgrading)) {
      me = it;
      break;
    }
  }
  if (me == q.end()) return;
  if (me->upgrading) {
    // Upgrader waits on every other granted holder.
    for (auto& g : q) {
      if (g.granted && g.txn != waiter) out->insert(g.txn);
    }
    return;
  }
  // Plain waiter: waits on incompatible granted holders and on
  // incompatible waiters ahead of it (FIFO grant order).
  for (auto it = q.begin(); it != me; ++it) {
    if (it->txn == waiter) continue;
    if (it->granted) {
      if (!Compatible(me->mode, it->mode) || it->upgrading) {
        out->insert(it->txn);
      }
    } else if (!Compatible(me->mode, it->mode)) {
      out->insert(it->txn);
    }
  }
}

bool LockManager::WouldDeadlock(TxnId requester) {
  // Iterative DFS over the waits-for graph looking for a cycle through the
  // requester. Shards are inspected one at a time; see header note about
  // raced scans.
  std::vector<TxnId> stack{requester};
  std::unordered_set<TxnId> visited;
  bool first = true;
  while (!stack.empty()) {
    TxnId cur = stack.back();
    stack.pop_back();
    if (!first) {
      if (cur == requester) return true;
      if (!visited.insert(cur).second) continue;
    }
    first = false;
    std::unordered_set<TxnId> next;
    CollectWaitsFor(cur, &next);
    for (TxnId t : next) stack.push_back(t);
  }
  return false;
}

Status LockManager::Lock(TxnId txn, LockName name, LockMode mode, bool wait) {
  // Every entry to the lock manager, blocked or not: the snapshot-read
  // acceptance test asserts this stays flat across a read-only scan.
  m_acquires_->Add(1);
  Shard& sh = ShardFor(name);
  obs::Histogram* wait_hist = m_wait_ns_[static_cast<size_t>(name.space)];
  uint64_t wait_start = 0;  // set when the request first fails to grant
  MutexLock l(sh.mu);
  LockState* state = &sh.table[name];

  // Reentrant / upgrade handling.
  Request* mine = nullptr;
  for (auto& r : state->queue) {
    if (r.txn == txn) {
      mine = &r;
      break;
    }
  }
  if (mine != nullptr && mine->granted) {
    if (mode == LockMode::kShared || mine->mode == LockMode::kExclusive) {
      mine->count++;
      return Status::OK();
    }
    // Upgrade S -> X.
    mine->upgrading = true;
    SetPending(txn, name);
    for (;;) {
      TryGrantLocked(state);
      if (!mine->upgrading && mine->mode == LockMode::kExclusive) {
        mine->count++;
        ClearPending(txn);
        sh.cv.NotifyAll();
        RecordWait(wait_hist, wait_start);
        return Status::OK();
      }
      if (!wait) {
        mine->upgrading = false;
        ClearPending(txn);
        TryGrantLocked(state);
        sh.cv.NotifyAll();
        return Status::Busy("lock upgrade unavailable");
      }
      l.Unlock();
      const bool dl = WouldDeadlock(txn);
      l.Lock();
      if (!mine->upgrading && mine->mode == LockMode::kExclusive) {
        continue;  // converted while we were detecting
      }
      if (dl) {
        mine->upgrading = false;
        ClearPending(txn);
        TryGrantLocked(state);
        sh.cv.NotifyAll();
        m_deadlocks_->Add(1);
        RecordWait(wait_hist, wait_start);
        return Status::Deadlock("lock upgrade would deadlock");
      }
      if (wait_start == 0) wait_start = obs::NowNanos();
      (void)sh.cv.WaitFor(sh.mu, kWaitSlice);
    }
  }
  GISTCR_CHECK(mine == nullptr);  // a txn thread never has two pending waits

  state->queue.push_back(Request{txn, mode, false, false, 1});
  Request* me = &state->queue.back();
  bool pending_set = false;
  for (;;) {
    TryGrantLocked(state);
    if (me->granted) {
      if (pending_set) ClearPending(txn);
      l.Unlock();
      RecordHeld(txn, name);
      sh.cv.NotifyAll();
      RecordWait(wait_hist, wait_start);
      return Status::OK();
    }
    if (!wait) {
      for (auto it = state->queue.begin(); it != state->queue.end(); ++it) {
        if (&*it == me) {
          state->queue.erase(it);
          break;
        }
      }
      TryGrantLocked(state);
      sh.cv.NotifyAll();
      return Status::Busy("lock unavailable");
    }
    if (!pending_set) {
      SetPending(txn, name);
      pending_set = true;
      wait_start = obs::NowNanos();
    }
    l.Unlock();
    const bool dl = WouldDeadlock(txn);
    l.Lock();
    if (me->granted) continue;  // granted while we were detecting
    if (dl) {
      ClearPending(txn);
      for (auto it = state->queue.begin(); it != state->queue.end(); ++it) {
        if (&*it == me) {
          state->queue.erase(it);
          break;
        }
      }
      TryGrantLocked(state);
      sh.cv.NotifyAll();
      m_deadlocks_->Add(1);
      RecordWait(wait_hist, wait_start);
      return Status::Deadlock("lock wait would deadlock");
    }
    (void)sh.cv.WaitFor(sh.mu, kWaitSlice);
  }
}

void LockManager::Unlock(TxnId txn, LockName name) {
  Shard& sh = ShardFor(name);
  bool removed = false;
  {
    MutexLock l(sh.mu);
    auto it = sh.table.find(name);
    if (it == sh.table.end()) return;
    LockState* state = &it->second;
    for (auto rit = state->queue.begin(); rit != state->queue.end(); ++rit) {
      if (rit->txn == txn && rit->granted) {
        if (--rit->count == 0) {
          state->queue.erase(rit);
          removed = true;
          TryGrantLocked(state);
          if (state->queue.empty()) sh.table.erase(it);
        }
        break;
      }
    }
    if (removed) sh.cv.NotifyAll();
  }
  if (removed) ForgetHeld(txn, name);
}

void LockManager::ReleaseAll(TxnId txn) {
  std::set<std::pair<uint8_t, uint64_t>> names;
  {
    TxnShard& ts = TxnShardFor(txn);
    MutexLock l(ts.mu);
    auto it = ts.held.find(txn);
    if (it == ts.held.end()) return;
    names.swap(it->second);
    ts.held.erase(it);
  }
  for (const auto& [space, key] : names) {
    const LockName name{static_cast<LockSpace>(space), key};
    Shard& sh = ShardFor(name);
    MutexLock l(sh.mu);
    auto it = sh.table.find(name);
    if (it == sh.table.end()) continue;
    LockState* state = &it->second;
    for (auto rit = state->queue.begin(); rit != state->queue.end(); ++rit) {
      if (rit->txn == txn) {
        state->queue.erase(rit);
        break;
      }
    }
    TryGrantLocked(state);
    if (state->queue.empty()) {
      sh.table.erase(it);
    }
    sh.cv.NotifyAll();
  }
}

void LockManager::ReplicateSharedHolders(LockName from, LockName to) {
  std::vector<TxnId> holders;
  {
    Shard& sh = ShardFor(from);
    MutexLock l(sh.mu);
    auto it = sh.table.find(from);
    if (it == sh.table.end()) return;
    for (auto& r : it->second.queue) {
      if (r.granted && r.mode == LockMode::kShared && !r.upgrading) {
        holders.push_back(r.txn);
      }
    }
  }
  if (holders.empty()) return;
  {
    Shard& sh = ShardFor(to);
    MutexLock l(sh.mu);
    LockState* state = &sh.table[to];
    for (TxnId t : holders) {
      Request* mine = nullptr;
      for (auto& r : state->queue) {
        if (r.txn == t) {
          mine = &r;
          break;
        }
      }
      if (mine != nullptr && mine->granted) {
        mine->count++;
      } else if (mine == nullptr) {
        // kNode X locks are try-only, so an S grant can always be added.
        state->queue.push_back(Request{t, LockMode::kShared, true, false, 1});
      }
    }
  }
  for (TxnId t : holders) RecordHeld(t, to);
}

Status LockManager::WaitForTxn(TxnId waiter, TxnId owner) {
  LockName name{LockSpace::kTxn, owner};
  Status st = Lock(waiter, name, LockMode::kShared, /*wait=*/true);
  if (!st.ok()) return st;
  Unlock(waiter, name);
  return Status::OK();
}

bool LockManager::Holds(TxnId txn, LockName name, LockMode mode) {
  Shard& sh = ShardFor(name);
  MutexLock l(sh.mu);
  auto it = sh.table.find(name);
  if (it == sh.table.end()) return false;
  for (auto& r : it->second.queue) {
    if (r.txn == txn && r.granted) {
      return mode == LockMode::kShared || r.mode == LockMode::kExclusive;
    }
  }
  return false;
}

std::vector<std::pair<TxnId, TxnId>> LockManager::WaitEdges() {
  std::vector<TxnId> waiters;
  {
    MutexLock l(pending_mu_);
    waiters.reserve(pending_.size());
    for (const auto& [txn, name] : pending_) waiters.push_back(txn);
  }
  std::vector<std::pair<TxnId, TxnId>> edges;
  for (TxnId waiter : waiters) {
    std::unordered_set<TxnId> holders;
    CollectWaitsFor(waiter, &holders);
    for (TxnId holder : holders) edges.emplace_back(waiter, holder);
  }
  return edges;
}

size_t LockManager::TableSize() {
  size_t n = 0;
  for (auto& sh : shards_) {
    MutexLock l(sh.mu);
    n += sh.table.size();
  }
  return n;
}

}  // namespace gistcr
