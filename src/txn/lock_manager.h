#ifndef GISTCR_TXN_LOCK_MANAGER_H_
#define GISTCR_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace gistcr {

enum class LockMode : uint8_t { kShared, kExclusive };

/// Lock name spaces (paper usage):
///  - kRecord: two-phase locks on data-record RIDs (hybrid mechanism).
///  - kNode:   signaling locks guarding node deletion (section 7.2); S-mode
///             from traversals with stacked pointers, X-mode try-only from
///             node deleters.
///  - kTxn:    every transaction X-locks its own id at begin; "blocking on a
///             predicate" is an S request on the owner's id (section 10.3).
enum class LockSpace : uint8_t { kRecord = 0, kNode = 1, kTxn = 2 };

struct LockName {
  LockSpace space;
  uint64_t key;

  bool operator==(const LockName& o) const {
    return space == o.space && key == o.key;
  }
};

struct LockNameHash {
  size_t operator()(const LockName& n) const {
    uint64_t x = n.key * 3 + static_cast<uint64_t>(n.space);
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

/// Queued S/X lock manager with FIFO fairness, reentrant requests, S->X
/// upgrades, and waits-for deadlock detection (the requester whose wait
/// closes a cycle is the victim and receives Status::Deadlock).
///
/// The lock table is sharded (hash of the name) so that concurrent index
/// operations — which take a record lock per qualifying entry plus
/// signaling locks per visited node — do not serialize on one mutex.
/// Deadlock detection walks the waits-for graph shard by shard without any
/// global lock: a blocked transaction re-runs detection on every bounded
/// cv wait, so a genuinely stable cycle is always found even if one scan
/// raced with grants (a stale scan can only victimize spuriously, which a
/// retry absorbs).
///
/// Unlike latches, locks never restrict physical access to buffer frames;
/// they are purely logical (paper section 5, footnote 8). Callers must not
/// hold any latch while blocking here — tree operations release latches
/// and re-position afterwards (sections 5 and 6).
class LockManager {
 public:
  LockManager();
  ~LockManager() = default;
  GISTCR_DISALLOW_COPY_AND_ASSIGN(LockManager);

  /// Re-points the manager's metrics at \p reg (null: process fallback).
  /// Call before concurrent use; the Database facade does so at init.
  void AttachMetrics(obs::MetricsRegistry* reg);

  /// Acquires \p name in \p mode for \p txn. Blocks unless \p wait is
  /// false, in which case a conflicting state yields Status::Busy.
  /// Reentrant: repeated acquisition increments a count. A txn holding S
  /// may request X (upgrade); the upgrade waits for other holders to drain.
  Status Lock(TxnId txn, LockName name, LockMode mode, bool wait = true);

  /// Releases one acquisition (decrements the reentrant count; removes the
  /// grant at zero). Used for early release of signaling locks; ordinary
  /// 2PL locks are released via ReleaseAll at end of transaction.
  void Unlock(TxnId txn, LockName name);

  /// Releases everything \p txn holds (end of transaction).
  void ReleaseAll(TxnId txn);

  /// Grants to every S-mode holder of \p from an S grant on \p to.
  /// Used when a node split replicates signaling locks to the new right
  /// sibling (paper sections 7.2 and 10.3). Safe because X on kNode names
  /// is only ever requested try-only.
  void ReplicateSharedHolders(LockName from, LockName to);

  /// Convenience for the predicate protocol: block until \p owner
  /// terminates by acquiring and immediately releasing S on its txn-id
  /// lock. Returns Deadlock if the wait would close a cycle.
  Status WaitForTxn(TxnId waiter, TxnId owner);

  /// True if \p txn holds \p name in at least \p mode (for tests).
  bool Holds(TxnId txn, LockName name, LockMode mode);

  /// Snapshot of the waits-for graph as (waiter, holder) edges, for the
  /// introspection surface. Each shard is read independently, so the edge
  /// set is approximate under concurrent grants — fine for diagnostics.
  std::vector<std::pair<TxnId, TxnId>> WaitEdges();

  /// Number of distinct lock names currently tracked (for tests).
  size_t TableSize();

 private:
  static constexpr size_t kShards = 64;
  static constexpr size_t kTxnShards = 64;

  struct Request {
    TxnId txn;
    LockMode mode;
    bool granted = false;
    bool upgrading = false;  ///< Granted S waiting to convert to X.
    uint32_t count = 1;      ///< Reentrant acquisitions.
  };

  struct LockState {
    // std::list: Request references stay stable across insert/erase of
    // other requests (blocked threads park on their own Request).
    std::list<Request> queue;
  };

  struct Shard {
    Mutex mu{GISTCR_LOCK_RANK(kLockShard, "lock.shard.mu")};
    CondVar cv;  ///< Notified whenever grants may change.
    std::unordered_map<LockName, LockState, LockNameHash> table
        GISTCR_GUARDED_BY(mu);
  };

  struct TxnShard {
    Mutex mu{GISTCR_LOCK_RANK(kLockTxnShard, "lock.txnshard.mu")};
    // txn -> names granted (for ReleaseAll).
    std::unordered_map<TxnId, std::set<std::pair<uint8_t, uint64_t>>> held
        GISTCR_GUARDED_BY(mu);
  };

  Shard& ShardFor(LockName name) {
    return shards_[LockNameHash()(name) % kShards];
  }
  TxnShard& TxnShardFor(TxnId txn) { return txn_shards_[txn % kTxnShards]; }

  void TryGrantLocked(LockState* state);
  void RecordHeld(TxnId txn, LockName name);
  void ForgetHeld(TxnId txn, LockName name);
  void SetPending(TxnId txn, LockName name);
  void ClearPending(TxnId txn);

  /// Direct waits-for edges of \p waiter (reads the shard of its single
  /// pending name). No global lock is held.
  void CollectWaitsFor(TxnId waiter, std::unordered_set<TxnId>* out);
  bool WouldDeadlock(TxnId requester);
  /// Records a blocked acquisition's wait into \p wait_hist and the
  /// current request's kLock stage (no-ops when \p wait_start is 0).
  static void RecordWait(obs::Histogram* wait_hist, uint64_t wait_start);

  Shard shards_[kShards];
  TxnShard txn_shards_[kTxnShards];

  /// Blocked-acquisition wait time, per lock space (kRecord = RID 2PL
  /// waits, kNode = signaling-lock waits, kTxn = predicate waits via
  /// WaitForTxn). Only acquisitions that actually blocked are recorded.
  obs::Histogram* m_wait_ns_[3] = {nullptr, nullptr, nullptr};
  obs::Counter* m_deadlocks_ = nullptr;
  /// Total Lock() entries (lock.acquires), blocked or not — the witness
  /// the zero-lock-manager-calls snapshot-read test asserts against.
  obs::Counter* m_acquires_ = nullptr;

  // The single name each blocked txn is waiting on (a txn runs on one
  // thread, so it waits on at most one name). Drives deadlock DFS.
  Mutex pending_mu_{GISTCR_LOCK_RANK(kLockPending, "lock.pending.mu")};
  std::unordered_map<TxnId, LockName> pending_
      GISTCR_GUARDED_BY(pending_mu_);
};

}  // namespace gistcr

#endif  // GISTCR_TXN_LOCK_MANAGER_H_
