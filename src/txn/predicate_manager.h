#ifndef GISTCR_TXN_PREDICATE_MANAGER_H_
#define GISTCR_TXN_PREDICATE_MANAGER_H_

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "util/slice.h"
#include "util/status.h"

namespace gistcr {

/// Kind of a predicate attachment (paper sections 4.3, 8, 10.3):
///  - kSearch: a scan's search predicate, attached top-down to every node
///    the scan visits; held to end of transaction.
///  - kInsert: an insert operation's key, attached to its target leaf so
///    that later scans queue behind it (starvation freedom, section 10.3);
///    released when the insert operation finishes.
///  - kUniqueProbe: the "= key" predicates a unique-index insert leaves on
///    every node visited during its search phase (section 8); released when
///    the insert operation finishes.
enum class PredKind : uint8_t { kSearch = 0, kInsert = 1, kUniqueProbe = 2 };

/// One predicate attachment on one node.
struct PredAttachment {
  uint64_t id;       ///< Attachment id (FIFO order within the node list).
  TxnId txn;
  uint64_t op_id;    ///< Operation within the txn (for per-op release).
  PredKind kind;
  std::string pred;  ///< Extension-interpreted predicate bytes.
};

/// The predicate manager of paper section 10.3: per-node FIFO lists of
/// attached predicates, per-transaction attachment indexes, replication on
/// node split and percolation on BP expansion. Predicate *semantics* stay
/// with the access-method extension: every conflict test is a caller-
/// supplied function over the opaque predicate bytes (the same
/// consistent() used for tree navigation — paper section 6).
///
/// Also supports the tree-global mode of pure predicate locking
/// (section 4.2) for the C2 ablation benchmark: attachments on
/// kGlobalTable live in one list, and conflict checks scan all of it.
class PredicateManager {
 public:
  /// Pseudo node id for the tree-global list (pure predicate locking mode).
  static constexpr PageId kGlobalTable = 0xFFFFFFFEu;

  PredicateManager();
  GISTCR_DISALLOW_COPY_AND_ASSIGN(PredicateManager);

  /// Re-points the manager's metrics at \p reg (null: process fallback);
  /// mirrors the Stats struct into registry counters. Call before
  /// concurrent use; the Database facade does so at init.
  void AttachMetrics(obs::MetricsRegistry* reg);

  using ConflictFn = std::function<bool(const PredAttachment&)>;

  /// Appends an attachment to \p node's FIFO list (idempotent for an
  /// identical (txn, op, kind, pred) already on the node). Returns its id.
  void Attach(PageId node, TxnId txn, uint64_t op_id, PredKind kind,
              Slice pred);

  /// Attaches and, atomically with the attachment, collects the distinct
  /// owner txns of attachments AHEAD of the new one for which
  /// \p conflicts returns true. FIFO position makes insert/scan queuing
  /// fair (section 10.3). Self-owned attachments never conflict.
  std::vector<TxnId> AttachAndFindConflicts(PageId node, TxnId txn,
                                            uint64_t op_id, PredKind kind,
                                            Slice pred,
                                            const ConflictFn& conflicts);

  /// Conflict check without attaching (pure-predicate-locking searches
  /// re-checking the global table).
  std::vector<TxnId> FindConflicts(PageId node, TxnId self,
                                   const ConflictFn& conflicts);

  /// Removes all attachments of (txn, op) — insert predicates and unique-
  /// probe predicates when the operation completes.
  void DetachOp(TxnId txn, uint64_t op_id);

  /// Removes all attachments of \p txn (end of transaction).
  void ReleaseTxn(TxnId txn);

  /// Node split: every attachment on \p orig whose predicate is consistent
  /// with the new sibling's BP (per \p consistent_with_new_bp) is
  /// replicated onto \p new_node (paper section 4.3 case 1).
  void ReplicateOnSplit(
      PageId orig, PageId new_node,
      const std::function<bool(const PredAttachment&)>& consistent_with_new_bp);

  /// BP expansion: attachments on \p parent consistent with the child's
  /// new BP but not its old BP are percolated down to \p child (paper
  /// section 4.3 case 2). \p should_percolate implements that test.
  void Percolate(
      PageId parent, PageId child,
      const std::function<bool(const PredAttachment&)>& should_percolate);

  /// All predicates currently attached to a node (tests/debugging).
  std::vector<PredAttachment> GetAttached(PageId node);

  /// Total number of attachments (tests / benchmarks).
  size_t TotalAttachments();

  struct Stats {
    uint64_t attaches = 0;
    uint64_t conflict_checks = 0;     ///< Calls that scanned a list.
    uint64_t predicates_scanned = 0;  ///< Attachments examined in checks.
    uint64_t replications = 0;
    uint64_t percolations = 0;
  };
  Stats GetStats();
  void ResetStats();

 private:
  void AttachLocked(PageId node, TxnId txn, uint64_t op_id, PredKind kind,
                    Slice pred) GISTCR_REQUIRES(mu_);

  obs::Counter* m_attaches_ = nullptr;
  obs::Counter* m_conflict_checks_ = nullptr;
  obs::Counter* m_predicates_scanned_ = nullptr;
  obs::Counter* m_replications_ = nullptr;
  obs::Counter* m_percolations_ = nullptr;

  Mutex mu_{GISTCR_LOCK_RANK(kPredicates, "preds.mu")};
  uint64_t next_id_ GISTCR_GUARDED_BY(mu_) = 1;
  std::unordered_map<PageId, std::list<PredAttachment>> by_node_
      GISTCR_GUARDED_BY(mu_);
  // txn -> nodes that may hold its attachments (superset; pruned on use).
  std::unordered_map<TxnId, std::vector<PageId>> by_txn_
      GISTCR_GUARDED_BY(mu_);
  Stats stats_ GISTCR_GUARDED_BY(mu_);
};

}  // namespace gistcr

#endif  // GISTCR_TXN_PREDICATE_MANAGER_H_
