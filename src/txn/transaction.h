#ifndef GISTCR_TXN_TRANSACTION_H_
#define GISTCR_TXN_TRANSACTION_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/types.h"
#include "util/macros.h"

namespace gistcr {

/// Degrees of isolation offered to index operations.
///  - kRepeatableRead: Degree 3 (paper section 4) — the full hybrid
///    mechanism: 2PL on data records plus node-attached predicate locks.
///  - kReadCommitted: Degree 2 — data-record locks are still taken (so
///    uncommitted inserts/deletes block readers) but no search predicates
///    are attached, admitting phantoms.
///  - kSnapshot: read-only snapshot isolation (DESIGN.md section 14) —
///    the transaction sees exactly the versions committed before its
///    begin stamp and takes **zero** lock-manager calls: no txn-id lock,
///    no record locks, no signaling locks, no predicate attach. Write
///    operations are rejected.
enum class IsolationLevel : uint8_t {
  kReadCommitted,
  kRepeatableRead,
  kSnapshot
};

enum class TxnState : uint8_t { kActive, kCommitted, kAborted };

/// A transaction descriptor. Owned by TransactionManager; one thread drives
/// a transaction at a time. Carries the ARIES backchain head (last_lsn) and
/// savepoint bookkeeping for partial rollback (paper section 10.2).
class Transaction {
 public:
  struct SavepointInfo {
    std::string name;
    Lsn lsn;  ///< last_lsn at the time the savepoint was established.
  };

  Transaction(TxnId id, IsolationLevel iso) : id_(id), iso_(iso) {}
  GISTCR_DISALLOW_COPY_AND_ASSIGN(Transaction);

  TxnId id() const { return id_; }
  IsolationLevel isolation() const { return iso_; }
  bool is_snapshot() const { return iso_ == IsolationLevel::kSnapshot; }

  /// Snapshot stamp (durable LSN at begin) for kSnapshot transactions;
  /// kInvalidLsn otherwise. Set once by TransactionManager::Begin.
  Lsn snapshot_lsn() const { return snapshot_lsn_; }
  void set_snapshot_lsn(Lsn s) { snapshot_lsn_ = s; }

  TxnState state() const { return state_.load(std::memory_order_acquire); }
  void set_state(TxnState s) { state_.store(s, std::memory_order_release); }

  // The backchain head and first LSN are written only by the transaction's
  // own thread but read cross-thread (checkpointing reads last_lsn; the
  // Commit_LSN garbage-collection test reads first_lsn), hence atomics.
  Lsn last_lsn() const { return last_lsn_.load(std::memory_order_acquire); }
  void set_last_lsn(Lsn l) { last_lsn_.store(l, std::memory_order_release); }
  Lsn first_lsn() const {
    return first_lsn_.load(std::memory_order_acquire);
  }
  void set_first_lsn(Lsn l) {
    first_lsn_.store(l, std::memory_order_release);
  }

  /// Operation ids scope insert predicates and unique-probe predicates to
  /// one index operation (released when the operation completes, not at end
  /// of transaction).
  uint64_t NextOpId() { return next_op_id_++; }

  std::vector<SavepointInfo>& savepoints() { return savepoints_; }

 private:
  const TxnId id_;
  const IsolationLevel iso_;
  std::atomic<TxnState> state_{TxnState::kActive};
  Lsn snapshot_lsn_ = kInvalidLsn;
  std::atomic<Lsn> first_lsn_{kInvalidLsn};
  std::atomic<Lsn> last_lsn_{kInvalidLsn};
  uint64_t next_op_id_ = 1;
  std::vector<SavepointInfo> savepoints_;
};

}  // namespace gistcr

#endif  // GISTCR_TXN_TRANSACTION_H_
