#include "obs/flight_recorder.h"

#include <csignal>
#include <cstdio>
#include <cstring>

#include "obs/trace.h"

namespace gistcr {
namespace obs {

namespace {

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGABRT: return "SIGABRT";
    case SIGILL: return "SIGILL";
    default: return "signal";
  }
}

void OnFatalSignal(int sig) {
  // Best effort: the process is dying either way.
  (void)FlightRecorder::Global().Dump(SignalName(sig));
  // Re-raise with default disposition so the process still dies with the
  // original signal (core dump, exit status) after the dump.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Arm(const std::string& path, MetricsRegistry* metrics,
                         SlowOpLog* slow_ops) {
  armed_.store(false, std::memory_order_release);
  std::snprintf(path_, sizeof(path_), "%s", path.c_str());
  metrics_.store(metrics, std::memory_order_relaxed);
  slow_ops_.store(slow_ops, std::memory_order_relaxed);
  dumped_.store(false, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void FlightRecorder::Disarm() {
  armed_.store(false, std::memory_order_release);
  metrics_.store(nullptr, std::memory_order_relaxed);
  slow_ops_.store(nullptr, std::memory_order_relaxed);
}

Status FlightRecorder::Dump(const char* reason) {
  if (!armed()) return Status::NotFound("flight recorder not armed");
  bool expected = false;
  if (!dumped_.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
    return Status::OK();  // an earlier crash path already wrote the file
  }

  std::string out = "{\"reason\":\"";
  for (const char* p = reason != nullptr ? reason : "unknown"; *p; p++) {
    const char c = *p;
    out.push_back(
        (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
            ? '_'
            : c);
  }
  out.append("\",\"t_us\":");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(NowMicros()));
  out.append(buf);

  out.append(",\"metrics\":");
  MetricsRegistry* metrics = metrics_.load(std::memory_order_relaxed);
  if (metrics != nullptr) {
    metrics->DumpJson(&out);
  } else {
    out.append("{}");
  }

  out.append(",\"slow_ops\":");
  SlowOpLog* slow = slow_ops_.load(std::memory_order_relaxed);
  out.append(slow != nullptr ? slow->DumpJson() : "[]");

  out.append(",\"trace\":");
  out.append(Tracer::Global().ExportJsonString());
  out.append("}\n");

  FILE* f = std::fopen(path_, "w");
  if (f == nullptr) {
    return Status::IOError(std::string("open flight file ") + path_);
  }
  const size_t n = std::fwrite(out.data(), 1, out.size(), f);
  std::fflush(f);
  std::fclose(f);
  if (n != out.size()) {
    return Status::IOError(std::string("short write to ") + path_);
  }
  return Status::OK();
}

void FlightRecorder::InstallSignalHandlers() {
  const int signals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGABRT, SIGILL};
  for (int sig : signals) std::signal(sig, OnFatalSignal);
}

}  // namespace obs
}  // namespace gistcr
