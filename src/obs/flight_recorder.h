#ifndef GISTCR_OBS_FLIGHT_RECORDER_H_
#define GISTCR_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <string>

#include "obs/metrics.h"
#include "obs/slow_op_log.h"
#include "util/macros.h"
#include "util/status.h"

namespace gistcr {
namespace obs {

/// Crash flight recorder (ISSUE 6 tentpole): when a fatal signal fires, a
/// fault-injection crash point trips, or an invariant fails, the last
/// moments of the process — metrics snapshot, slow-op ring, trace rings —
/// are dumped as one JSON object to a sidecar file next to the database
/// (`<db path>.flight`), so post-mortem analysis starts from evidence
/// instead of guesswork.
///
/// The recorder is a process-global singleton armed by Database
/// initialization and disarmed on clean shutdown. Arm/Disarm use
/// release/acquire publication on plain atomics (no recorder mutex), so
/// Dump can run from a crash point that already holds unrelated engine
/// locks; serialization itself briefly takes the leaf obs-layer mutexes
/// (registry, slow-op ring, trace rings), which are never held across
/// engine calls. The signal path is best-effort, not strictly
/// async-signal-safe (it allocates while serializing) — acceptable for a
/// diagnostics artifact written on the way down.
class FlightRecorder {
 public:
  static FlightRecorder& Global();

  FlightRecorder() = default;
  GISTCR_DISALLOW_COPY_AND_ASSIGN(FlightRecorder);

  /// Arms the recorder: crashes from now on dump to \p path. The metrics
  /// registry and slow-op log must outlive the armed window. Re-arming
  /// replaces the previous target (last Database wins).
  void Arm(const std::string& path, MetricsRegistry* metrics,
           SlowOpLog* slow_ops);
  /// Disarms: subsequent crashes dump nothing. Safe when not armed.
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Writes the flight file now:
  ///   {"reason":"...","t_us":...,"metrics":{...},"slow_ops":[...],
  ///    "trace":[...]}
  /// Returns NotFound when disarmed. Only the first dump per arming wins;
  /// later calls (e.g. SIGABRT raised while handling SIGSEGV) are no-ops
  /// returning OK so crash paths never fight over the file.
  Status Dump(const char* reason);

  /// Installs SIGSEGV/SIGBUS/SIGFPE/SIGABRT/SIGILL handlers that dump the
  /// flight file and then re-raise with default disposition. Opt-in
  /// (gistcr_serverd, or GISTCR_FLIGHT_SIGNALS=1 via Database init): unit
  /// tests use death tests and sanitizers that own these signals.
  static void InstallSignalHandlers();

 private:
  // Fixed buffer (not std::string) so a crashing thread never races a
  // concurrent Arm's reallocation; armed_ is the publication point.
  static constexpr size_t kMaxPath = 512;
  char path_[kMaxPath] = {};
  std::atomic<MetricsRegistry*> metrics_{nullptr};
  std::atomic<SlowOpLog*> slow_ops_{nullptr};
  std::atomic<bool> armed_{false};
  std::atomic<bool> dumped_{false};  ///< first crash wins per arming
};

}  // namespace obs
}  // namespace gistcr

#endif  // GISTCR_OBS_FLIGHT_RECORDER_H_
