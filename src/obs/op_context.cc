#include "obs/op_context.h"

namespace gistcr {
namespace obs {

namespace {
thread_local OpContext* tls_current_op = nullptr;
}  // namespace

const char* StageName(Stage s) {
  switch (s) {
    case Stage::kQueue: return "queue";
    case Stage::kLock: return "lock";
    case Stage::kLatch: return "latch";
    case Stage::kTree: return "tree";
    case Stage::kWalWait: return "walwait";
    case Stage::kFsync: return "fsync";
    case Stage::kOther: return "other";
    case Stage::kCount: break;
  }
  return "unknown";
}

OpContext* CurrentOp() { return tls_current_op; }

OpScope::OpScope(OpContext* ctx) : prev_(tls_current_op) {
  tls_current_op = ctx;
}

OpScope::~OpScope() { tls_current_op = prev_; }

void AddStage(Stage s, uint64_t ns) {
  OpContext* op = tls_current_op;
  if (op != nullptr) op->Add(s, ns);
}

void BumpRestarts() {
  OpContext* op = tls_current_op;
  if (op != nullptr) op->restarts++;
}

TreeScope::TreeScope() : op_(tls_current_op) {
  if (op_ == nullptr) return;
  if (op_->tree_depth++ > 0) return;  // only the outermost scope records
  start_ns_ = NowNanos();
  waits_at_start_ = op_->WaitTotal();
}

TreeScope::~TreeScope() {
  if (op_ == nullptr) return;
  if (--op_->tree_depth > 0) return;
  const uint64_t elapsed = NowNanos() - start_ns_;
  const uint64_t waited = op_->WaitTotal() - waits_at_start_;
  // Waits incurred inside the traversal belong to their own stages; what
  // remains is genuine tree work (node search, penalty, split, logging).
  op_->Add(Stage::kTree, elapsed > waited ? elapsed - waited : 0);
}

}  // namespace obs
}  // namespace gistcr
