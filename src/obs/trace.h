#ifndef GISTCR_OBS_TRACE_H_
#define GISTCR_OBS_TRACE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace gistcr {
namespace obs {

/// One exported trace event (Chrome trace-event format:
/// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
struct TraceEvent {
  const char* name;  ///< Static string (never owned).
  char ph;           ///< 'X' complete, 'i' instant.
  uint32_t tid;
  uint64_t ts_us;    ///< Start timestamp, microseconds (steady clock).
  uint64_t dur_us;   ///< Duration ('X' events).
  const char* arg_name = nullptr;  ///< Optional scope argument key.
  uint64_t arg = 0;                ///< Argument value (when arg_name set).
};

/// Process-wide event tracer: one fixed-capacity ring buffer per thread,
/// written lock-free by its owning thread (each slot field is a relaxed
/// atomic, so a concurrent export tears at worst one event, never the
/// process). The ring overwrites its oldest events when full, bounding
/// memory for arbitrarily long runs. Export serializes every ring to the
/// chrome://tracing JSON array format.
///
/// Recording calls are compiled out entirely unless GISTCR_TRACING is
/// defined (see the macros below); the exporter always exists so
/// Database::ExportTrace stays linkable in both configurations.
class Tracer {
 public:
  static constexpr size_t kRingCapacity = 4096;  ///< default events/thread

  static Tracer& Global();

  Tracer() = default;
  GISTCR_DISALLOW_COPY_AND_ASSIGN(Tracer);

  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Sets the per-thread ring capacity for rings created *after* this
  /// call; existing rings keep their size. 0 restores the default.
  void SetRingCapacity(size_t capacity) {
    ring_capacity_.store(capacity != 0 ? capacity : kRingCapacity,
                         std::memory_order_relaxed);
  }
  size_t ring_capacity() const {
    return ring_capacity_.load(std::memory_order_relaxed);
  }

  /// Records a complete ('X') event. \p name (and \p arg_name) must be
  /// string literals or otherwise outlive the tracer.
  void RecordComplete(const char* name, uint64_t ts_us, uint64_t dur_us,
                      const char* arg_name = nullptr, uint64_t arg = 0);
  /// Records an instant ('i') event at the current time.
  void RecordInstant(const char* name);

  /// Snapshot of all rings, oldest-first per thread.
  std::vector<TraceEvent> Snapshot();
  /// Chrome trace-event JSON: an array of {name, cat, ph, ts, dur, pid,
  /// tid} objects, loadable in chrome://tracing and Perfetto. When the
  /// tracer is runtime-disabled the result is an empty (but valid) array.
  std::string ExportJsonString();
  Status ExportJson(const std::string& path);

  /// Drops all recorded events (rings stay registered).
  void Clear();
  size_t EventCount();

 private:
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> ts_us{0};
    std::atomic<uint64_t> dur_us{0};
    std::atomic<char> ph{'X'};
    std::atomic<const char*> arg_name{nullptr};
    std::atomic<uint64_t> arg{0};
  };
  struct ThreadRing {
    explicit ThreadRing(size_t capacity) : slots(capacity) {}
    uint32_t tid = 0;
    std::atomic<uint64_t> next{0};  ///< total events written (mod = slot)
    std::vector<Slot> slots;        ///< sized once at creation, never grown
  };

  ThreadRing* RingForThisThread();
  void Record(const char* name, char ph, uint64_t ts_us, uint64_t dur_us,
              const char* arg_name = nullptr, uint64_t arg = 0);

  Mutex mu_{GISTCR_LOCK_RANK(kTrace, "obs.trace.mu")};  ///< guards rings_ registration and export iteration
  std::vector<std::unique_ptr<ThreadRing>> rings_ GISTCR_GUARDED_BY(mu_);
  std::atomic<uint32_t> next_tid_{1};
  std::atomic<bool> enabled_{true};
  std::atomic<size_t> ring_capacity_{kRingCapacity};
};

/// RAII scope producing one complete ('X') event spanning its lifetime,
/// optionally tagged with a single integer argument (e.g. a request id).
class TraceScope {
 public:
  explicit TraceScope(const char* name)
      : name_(name), start_us_(NowMicros()) {}
  TraceScope(const char* name, const char* arg_name, uint64_t arg)
      : name_(name), arg_name_(arg_name), arg_(arg),
        start_us_(NowMicros()) {}
  ~TraceScope() {
    Tracer::Global().RecordComplete(name_, start_us_,
                                    NowMicros() - start_us_, arg_name_,
                                    arg_);
  }
  GISTCR_DISALLOW_COPY_AND_ASSIGN(TraceScope);

 private:
  const char* name_;
  const char* arg_name_ = nullptr;
  uint64_t arg_ = 0;
  uint64_t start_us_;
};

}  // namespace obs
}  // namespace gistcr

// Tracing macros: free when GISTCR_TRACING is undefined (the CMake option
// of the same name controls it; default ON). With tracing compiled in, a
// scope costs two steady_clock reads and ~4 relaxed stores.
#ifdef GISTCR_TRACING
#define GISTCR_TRACE_CONCAT2(a, b) a##b
#define GISTCR_TRACE_CONCAT(a, b) GISTCR_TRACE_CONCAT2(a, b)
#define GISTCR_TRACE_SCOPE(name)            \
  ::gistcr::obs::TraceScope GISTCR_TRACE_CONCAT(gistcr_trace_scope_, \
                                                __LINE__)(name)
#define GISTCR_TRACE_SCOPE_ARG(name, key, value)                     \
  ::gistcr::obs::TraceScope GISTCR_TRACE_CONCAT(gistcr_trace_scope_, \
                                                __LINE__)(           \
      name, key, static_cast<uint64_t>(value))
#define GISTCR_TRACE_INSTANT(name) \
  ::gistcr::obs::Tracer::Global().RecordInstant(name)
#else
#define GISTCR_TRACE_SCOPE(name) ((void)0)
#define GISTCR_TRACE_SCOPE_ARG(name, key, value) ((void)0)
#define GISTCR_TRACE_INSTANT(name) ((void)0)
#endif

#endif  // GISTCR_OBS_TRACE_H_
