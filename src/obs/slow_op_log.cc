#include "obs/slow_op_log.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace gistcr {
namespace obs {

void SlowOpLog::Configure(size_t capacity, uint64_t threshold_ns) {
  MutexLock l(mu_);
  if (capacity != 0) capacity_ = capacity;
  ring_.clear();
  next_ = 0;
  threshold_ns_.store(threshold_ns, std::memory_order_relaxed);
}

void SlowOpLog::MaybeRecord(const OpContext& ctx, uint64_t total_ns,
                            const char* status_str) {
  const uint64_t threshold = threshold_ns();
  if (threshold == 0 || total_ns < threshold) return;

  SlowOpRecord rec;
  rec.captured_us = NowMicros();
  rec.request_id = ctx.request_id;
  rec.op_name = ctx.op_name;
  rec.txn_id = ctx.txn_id;
  rec.total_ns = total_ns;
  for (size_t i = 0; i < kNumStages; i++) rec.stage_ns[i] = ctx.stage_ns[i];
  rec.restarts = ctx.restarts;
  rec.retries = ctx.retries;
  std::snprintf(rec.status, sizeof(rec.status), "%s",
                status_str != nullptr ? status_str : "ok");
  // The status lands inside a JSON string: neuter anything that would
  // break the quoting rather than pay for real escaping on this path.
  for (char& c : rec.status) {
    if (c == '\0') break;
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
      c = '_';
    }
  }

  MutexLock l(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
  } else if (!ring_.empty()) {
    ring_[next_ % ring_.size()] = rec;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  next_++;
}

std::vector<SlowOpRecord> SlowOpLog::Snapshot() const {
  MutexLock l(mu_);
  std::vector<SlowOpRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_ || ring_.empty()) {
    out = ring_;  // not yet wrapped: insertion order is oldest-first
  } else {
    const size_t start = next_ % ring_.size();
    for (size_t i = 0; i < ring_.size(); i++) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
  }
  return out;
}

std::string SlowOpLog::DumpJson() const {
  const std::vector<SlowOpRecord> records = Snapshot();
  std::string out = "[";
  char buf[640];
  bool first = true;
  for (const SlowOpRecord& r : records) {
    // One line per record so the ring greps cleanly out of a flight file.
    int n = std::snprintf(
        buf, sizeof(buf),
        "%s\n{\"t_us\":%" PRIu64 ",\"rid\":%" PRIu64 ",\"op\":\"%s\","
        "\"txn\":%" PRIu64 ",\"total_ns\":%" PRIu64 ",\"stages\":{",
        first ? "" : ",", r.captured_us, r.request_id, r.op_name, r.txn_id,
        r.total_ns);
    if (n > 0) out.append(buf, static_cast<size_t>(n));
    for (size_t i = 0; i < kNumStages; i++) {
      n = std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64,
                        i == 0 ? "" : ",",
                        StageName(static_cast<Stage>(i)), r.stage_ns[i]);
      if (n > 0) out.append(buf, static_cast<size_t>(n));
    }
    n = std::snprintf(buf, sizeof(buf),
                      "},\"restarts\":%u,\"retries\":%u,\"status\":\"%s\"}",
                      r.restarts, r.retries, r.status);
    if (n > 0) out.append(buf, static_cast<size_t>(n));
    first = false;
  }
  out.append("\n]\n");
  return out;
}

size_t SlowOpLog::size() const {
  MutexLock l(mu_);
  return ring_.size();
}

void SlowOpLog::Clear() {
  MutexLock l(mu_);
  ring_.clear();
  next_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace gistcr
