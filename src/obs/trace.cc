#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace gistcr {
namespace obs {

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadRing* Tracer::RingForThisThread() {
  // One ring per thread for the global tracer's lifetime; rings of exited
  // threads are kept (their events remain exportable). The capacity knob
  // is sampled once here, so reconfiguration affects new rings only.
  static thread_local ThreadRing* tls_ring = nullptr;
  if (tls_ring == nullptr) {
    auto ring = std::make_unique<ThreadRing>(ring_capacity());
    ring->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    tls_ring = ring.get();
    MutexLock l(mu_);
    rings_.push_back(std::move(ring));
  }
  return tls_ring;
}

void Tracer::Record(const char* name, char ph, uint64_t ts_us,
                    uint64_t dur_us, const char* arg_name, uint64_t arg) {
  if (!enabled()) return;
  ThreadRing* r = RingForThisThread();
  const uint64_t i =
      r->next.fetch_add(1, std::memory_order_relaxed) % r->slots.size();
  Slot& s = r->slots[i];
  s.ph.store(ph, std::memory_order_relaxed);
  s.ts_us.store(ts_us, std::memory_order_relaxed);
  s.dur_us.store(dur_us, std::memory_order_relaxed);
  s.arg_name.store(arg_name, std::memory_order_relaxed);
  s.arg.store(arg, std::memory_order_relaxed);
  // Name last: a null name marks an unwritten slot for the exporter.
  s.name.store(name, std::memory_order_release);
}

void Tracer::RecordComplete(const char* name, uint64_t ts_us,
                            uint64_t dur_us, const char* arg_name,
                            uint64_t arg) {
  Record(name, 'X', ts_us, dur_us, arg_name, arg);
}

void Tracer::RecordInstant(const char* name) {
  Record(name, 'i', NowMicros(), 0);
}

std::vector<TraceEvent> Tracer::Snapshot() {
  std::vector<TraceEvent> out;
  MutexLock l(mu_);
  for (const auto& ring : rings_) {
    const uint64_t capacity = ring->slots.size();
    const uint64_t written = ring->next.load(std::memory_order_relaxed);
    const uint64_t n = std::min<uint64_t>(written, capacity);
    // Oldest surviving event first.
    const uint64_t start = written - n;
    for (uint64_t k = 0; k < n; k++) {
      const Slot& s = ring->slots[(start + k) % capacity];
      const char* name = s.name.load(std::memory_order_acquire);
      if (name == nullptr) continue;
      out.push_back(TraceEvent{name, s.ph.load(std::memory_order_relaxed),
                               ring->tid,
                               s.ts_us.load(std::memory_order_relaxed),
                               s.dur_us.load(std::memory_order_relaxed),
                               s.arg_name.load(std::memory_order_relaxed),
                               s.arg.load(std::memory_order_relaxed)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return out;
}

std::string Tracer::ExportJsonString() {
  // Runtime-disabled tracing exports an empty-but-valid array: rings may
  // still hold events from before SetEnabled(false), but a disabled
  // tracer promises "no output", not "stale output".
  if (!enabled()) return "[\n]\n";
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "[";
  char buf[320];
  bool first = true;
  for (const TraceEvent& e : events) {
    int n = std::snprintf(
        buf, sizeof(buf),
        "%s\n{\"name\":\"%s\",\"cat\":\"gistcr\",\"ph\":\"%c\","
        "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64 ",\"pid\":1,\"tid\":%u",
        first ? "" : ",", e.name, e.ph, e.ts_us, e.dur_us, e.tid);
    if (n > 0) out.append(buf, static_cast<size_t>(n));
    if (e.arg_name != nullptr) {
      n = std::snprintf(buf, sizeof(buf), ",\"args\":{\"%s\":%" PRIu64 "}",
                        e.arg_name, e.arg);
      if (n > 0) out.append(buf, static_cast<size_t>(n));
    }
    out.push_back('}');
    first = false;
  }
  out.append("\n]\n");
  return out;
}

Status Tracer::ExportJson(const std::string& path) {
  const std::string json = ExportJsonString();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("open trace file " + path);
  const size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size()) return Status::IOError("short write to " + path);
  return Status::OK();
}

void Tracer::Clear() {
  MutexLock l(mu_);
  for (auto& ring : rings_) {
    for (auto& s : ring->slots) {
      s.name.store(nullptr, std::memory_order_relaxed);
    }
    ring->next.store(0, std::memory_order_relaxed);
  }
}

size_t Tracer::EventCount() { return Snapshot().size(); }

}  // namespace obs
}  // namespace gistcr
