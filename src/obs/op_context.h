#ifndef GISTCR_OBS_OP_CONTEXT_H_
#define GISTCR_OBS_OP_CONTEXT_H_

#include <cstdint>

#include "obs/metrics.h"
#include "util/macros.h"

namespace gistcr {
namespace obs {

/// Latency stages a request's end-to-end time decomposes into. The stages
/// partition the response time exactly: kOther is computed at the end as
/// total minus everything attributed, so the per-stage sums always add up
/// to the measured end-to-end latency (DESIGN.md section 12).
enum class Stage : uint8_t {
  kQueue = 0,   ///< parsed frame waiting in the server session queue
  kLock,        ///< blocked lock-manager acquisitions (2PL, signaling, txn)
  kLatch,       ///< page-latch acquisition inside GiST traversal
  kTree,        ///< GiST traversal/modification time, waits excluded
  kWalWait,     ///< group-commit wait minus the covering fsync's share
  kFsync,       ///< the covering flush batch's write+fsync share
  kOther,       ///< everything unattributed (decode, heap I/O, send)
  kCount,
};
constexpr size_t kNumStages = static_cast<size_t>(Stage::kCount);

const char* StageName(Stage s);

/// Per-request span context (ISSUE 6 tentpole): carries the request id and
/// per-stage timers from Session::Process through txn begin, lock-manager
/// waits, GiST traversal and the WAL flusher's group-commit wait.
///
/// Propagation is via a thread-local current-op pointer (see OpScope): the
/// engine runs every request on exactly one worker thread for its whole
/// life (the one-thread-per-transaction discipline, DESIGN.md section 10),
/// so thread identity *is* request identity between OpScope construction
/// and destruction. Engine layers attribute waits with AddStage(), which
/// is a TLS load and a branch when no request is in flight — cheap enough
/// to stay unconditionally compiled in.
struct OpContext {
  uint64_t request_id = 0;
  const char* op_name = "";  ///< static string (wire opcode name)
  uint64_t txn_id = 0;
  uint64_t start_ns = 0;  ///< enqueue time (end-to-end clock starts here)
  uint64_t stage_ns[kNumStages] = {};
  uint32_t restarts = 0;  ///< rightlink follows / traversal restarts
  uint32_t retries = 0;   ///< operation-level retries (unique rollback etc.)
  uint32_t tree_depth = 0;  ///< TreeScope nesting (outermost records)

  void Add(Stage s, uint64_t ns) { stage_ns[static_cast<size_t>(s)] += ns; }
  uint64_t Get(Stage s) const { return stage_ns[static_cast<size_t>(s)]; }
  /// Sum of the wait stages subtracted from kTree by TreeScope.
  uint64_t WaitTotal() const {
    return Get(Stage::kLock) + Get(Stage::kLatch) + Get(Stage::kWalWait) +
           Get(Stage::kFsync);
  }
};

/// The request currently executing on this thread (null outside a span).
OpContext* CurrentOp();

/// Installs \p ctx as this thread's current op for the scope's lifetime;
/// restores the previous one (normally null) on destruction.
class OpScope {
 public:
  explicit OpScope(OpContext* ctx);
  ~OpScope();
  GISTCR_DISALLOW_COPY_AND_ASSIGN(OpScope);

 private:
  OpContext* prev_;
};

/// Attributes \p ns to stage \p s of the current op, if any. Safe (and
/// nearly free) to call from any engine layer on any thread.
void AddStage(Stage s, uint64_t ns);

/// Bumps the current op's restart counter (rightlink follow, traversal
/// restart), if any.
void BumpRestarts();

/// RAII scope attributing time to Stage::kTree *exclusively*: on exit the
/// elapsed time minus every wait stage recorded inside the scope is added,
/// so tree time never double-counts a lock/latch/WAL wait incurred during
/// the traversal. Nested scopes (InsertUnique -> search phase) record only
/// at the outermost level.
class TreeScope {
 public:
  TreeScope();
  ~TreeScope();
  GISTCR_DISALLOW_COPY_AND_ASSIGN(TreeScope);

 private:
  OpContext* op_;  ///< null when no request is in flight
  uint64_t start_ns_ = 0;
  uint64_t waits_at_start_ = 0;
};

}  // namespace obs
}  // namespace gistcr

#endif  // GISTCR_OBS_OP_CONTEXT_H_
