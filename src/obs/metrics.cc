#include "obs/metrics.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace gistcr {
namespace obs {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

}  // namespace

double Histogram::Snapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  uint64_t cum = 0;
  for (size_t i = 0; i < kNumBuckets; i++) {
    if (buckets[i] == 0) continue;
    if (static_cast<double>(cum + buckets[i]) >= target) {
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi = static_cast<double>(BucketUpperBound(i));
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(buckets[i]);
      double v = lo + (hi - lo) * frac;
      // Clamp to the observed range: interpolation cannot be more precise
      // than the recorded extremes.
      if (v < static_cast<double>(min)) v = static_cast<double>(min);
      if (v > static_cast<double>(max)) v = static_cast<double>(max);
      return v;
    }
    cum += buckets[i];
  }
  return static_cast<double>(max);
}

size_t Histogram::Snapshot::PopulatedBuckets() const {
  size_t n = 0;
  for (size_t i = 0; i < kNumBuckets; i++) {
    if (buckets[i] != 0) n++;
  }
  return n;
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot s;
  for (size_t i = 0; i < kNumBuckets; i++) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  const uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min = (s.count == 0 || mn == UINT64_MAX) ? 0 : mn;
  s.max = max_.load(std::memory_order_relaxed);
  s.p50 = s.Percentile(0.50);
  s.p95 = s.Percentile(0.95);
  s.p99 = s.Percentile(0.99);
  return s;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock l(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock l(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock l(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::DumpText(std::string* out) const {
  MutexLock l(mu_);
  out->append("== counters ==\n");
  for (const auto& [name, c] : counters_) {
    AppendF(out, "%-36s = %" PRIu64 "\n", name.c_str(), c->value());
  }
  out->append("== gauges ==\n");
  for (const auto& [name, g] : gauges_) {
    AppendF(out, "%-36s = %.6g\n", name.c_str(), g->value());
  }
  out->append("== histograms ==\n");
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->GetSnapshot();
    AppendF(out,
            "%-36s count=%" PRIu64 " min=%" PRIu64 " mean=%.1f p50=%.0f"
            " p95=%.0f p99=%.0f max=%" PRIu64 "\n",
            name.c_str(), s.count, s.min, s.mean(), s.p50, s.p95, s.p99,
            s.max);
  }
}

void MetricsRegistry::DumpJson(std::string* out) const {
  MutexLock l(mu_);
  out->append("{\"counters\":{");
  bool first = true;
  for (const auto& [name, c] : counters_) {
    AppendF(out, "%s\"%s\":%" PRIu64, first ? "" : ",", name.c_str(),
            c->value());
    first = false;
  }
  out->append("},\"gauges\":{");
  first = true;
  for (const auto& [name, g] : gauges_) {
    AppendF(out, "%s\"%s\":%.6g", first ? "" : ",", name.c_str(), g->value());
    first = false;
  }
  out->append("},\"histograms\":{");
  first = true;
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->GetSnapshot();
    AppendF(out,
            "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
            ",\"min\":%" PRIu64 ",\"max\":%" PRIu64
            ",\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f,\"buckets\":[",
            first ? "" : ",", name.c_str(), s.count, s.sum, s.min, s.max,
            s.p50, s.p95, s.p99);
    bool bfirst = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; i++) {
      if (s.buckets[i] == 0) continue;
      AppendF(out, "%s{\"ge\":%" PRIu64 ",\"count\":%" PRIu64 "}",
              bfirst ? "" : ",", Histogram::BucketLowerBound(i), s.buckets[i]);
      bfirst = false;
    }
    out->append("]}");
    first = false;
  }
  out->append("}}");
}

std::string PrometheusSanitizeName(const std::string& name) {
  std::string out = "gistcr_";
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') out.push_back('_');
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string PrometheusEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out.append("\\\\"); break;
      case '"': out.append("\\\""); break;
      case '\n': out.append("\\n"); break;
      default: out.push_back(c);
    }
  }
  return out;
}

void MetricsRegistry::DumpPrometheus(std::string* out) const {
  MutexLock l(mu_);
  for (const auto& [name, c] : counters_) {
    const std::string p = PrometheusSanitizeName(name);
    AppendF(out, "# TYPE %s counter\n", p.c_str());
    AppendF(out, "%s %" PRIu64 "\n", p.c_str(), c->value());
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = PrometheusSanitizeName(name);
    AppendF(out, "# TYPE %s gauge\n", p.c_str());
    AppendF(out, "%s %.6g\n", p.c_str(), g->value());
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = PrometheusSanitizeName(name);
    const Histogram::Snapshot s = h->GetSnapshot();
    AppendF(out, "# TYPE %s histogram\n", p.c_str());
    // Cumulative counts: `le` buckets only where the count advances, plus
    // the mandatory +Inf series equal to the total count.
    uint64_t cum = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; i++) {
      if (s.buckets[i] == 0) continue;
      cum += s.buckets[i];
      AppendF(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", p.c_str(),
              Histogram::BucketUpperBound(i), cum);
    }
    AppendF(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", p.c_str(), s.count);
    AppendF(out, "%s_sum %" PRIu64 "\n", p.c_str(), s.sum);
    AppendF(out, "%s_count %" PRIu64 "\n", p.c_str(), s.count);
  }
}

MetricsRegistry* MetricsRegistry::Fallback() {
  static MetricsRegistry* fallback = new MetricsRegistry();
  return fallback;
}

}  // namespace obs
}  // namespace gistcr
