#ifndef GISTCR_OBS_SLOW_OP_LOG_H_
#define GISTCR_OBS_SLOW_OP_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "obs/op_context.h"
#include "util/macros.h"

namespace gistcr {
namespace obs {

/// One captured slow request: the OpContext's stage breakdown plus outcome,
/// serialized as a one-line JSON object by DumpJson (schema in DESIGN.md
/// section 12).
struct SlowOpRecord {
  uint64_t captured_us = 0;  ///< steady-clock capture time (NowMicros)
  uint64_t request_id = 0;
  const char* op_name = "";  ///< static string (wire opcode name)
  uint64_t txn_id = 0;
  uint64_t total_ns = 0;
  uint64_t stage_ns[kNumStages] = {};
  uint32_t restarts = 0;
  uint32_t retries = 0;
  char status[48] = "ok";  ///< truncated status string
};

/// Bounded in-memory ring of slow-request records (ISSUE 6 tentpole).
/// Requests whose end-to-end latency exceeds the configured threshold are
/// captured; the ring overwrites its oldest record when full, bounding
/// memory for arbitrarily long runs. Capture takes a mutex — by
/// construction only requests already tens of milliseconds late pay it.
class SlowOpLog {
 public:
  static constexpr size_t kDefaultCapacity = 256;
  static constexpr uint64_t kDefaultThresholdNs = 10'000'000;  // 10 ms

  SlowOpLog() = default;
  GISTCR_DISALLOW_COPY_AND_ASSIGN(SlowOpLog);

  /// Reconfigures capacity (existing records are dropped) and threshold.
  /// \p capacity 0 keeps the default; \p threshold_ns 0 disables capture.
  void Configure(size_t capacity, uint64_t threshold_ns);

  uint64_t threshold_ns() const {
    return threshold_ns_.load(std::memory_order_relaxed);
  }
  void SetThresholdNs(uint64_t ns) {
    threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  bool enabled() const { return threshold_ns() != 0; }

  /// Captures \p ctx if \p total_ns exceeds the threshold. \p status_str
  /// is truncated to the record's fixed status field.
  void MaybeRecord(const OpContext& ctx, uint64_t total_ns,
                   const char* status_str);

  /// Records currently in the ring, oldest first.
  std::vector<SlowOpRecord> Snapshot() const;

  /// JSON array of one-line records, oldest first:
  ///   {"t_us":..,"rid":..,"op":"insert","txn":..,"total_ns":..,
  ///    "stages":{"queue":..,...},"restarts":..,"retries":..,
  ///    "status":"ok"}
  std::string DumpJson() const;

  size_t size() const;
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void Clear();

 private:
  std::atomic<uint64_t> threshold_ns_{kDefaultThresholdNs};
  std::atomic<uint64_t> dropped_{0};  ///< records overwritten by wrap

  mutable Mutex mu_{GISTCR_LOCK_RANK(kSlowOps, "obs.slowop.mu")};
  std::vector<SlowOpRecord> ring_ GISTCR_GUARDED_BY(mu_);
  size_t capacity_ GISTCR_GUARDED_BY(mu_) = kDefaultCapacity;
  uint64_t next_ GISTCR_GUARDED_BY(mu_) = 0;  ///< total records captured
};

}  // namespace obs
}  // namespace gistcr

#endif  // GISTCR_OBS_SLOW_OP_LOG_H_
