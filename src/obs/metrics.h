#ifndef GISTCR_OBS_METRICS_H_
#define GISTCR_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "util/macros.h"

namespace gistcr {
namespace obs {

/// Monotonic clock for latency measurement (nanoseconds).
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline uint64_t NowMicros() { return NowNanos() / 1000; }

/// Monotonically increasing event count. Wait-free; relaxed ordering (the
/// value is a statistic, not a synchronization point).
class Counter {
 public:
  Counter() = default;
  GISTCR_DISALLOW_COPY_AND_ASSIGN(Counter);

  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  /// std::atomic-compatible read; GistStats call sites in tests, examples
  /// and benchmarks predate the registry and use `.load()`.
  uint64_t load() const { return value(); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// A point-in-time value (hit rates, resident counts).
class Gauge {
 public:
  Gauge() = default;
  GISTCR_DISALLOW_COPY_AND_ASSIGN(Gauge);

  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket latency histogram with exponential (power-of-two) bucket
/// bounds. Bucket 0 holds the value 0; bucket i (i >= 1) holds values in
/// [2^(i-1), 2^i); the last bucket is unbounded above. Recording is
/// wait-free (one relaxed fetch_add per bucket plus sum/min/max updates);
/// snapshots interpolate p50/p95/p99 within the resolved bucket.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 49;  ///< covers [0, 2^47ns ~ 1.6d)

  Histogram() = default;
  GISTCR_DISALLOW_COPY_AND_ASSIGN(Histogram);

  void Record(uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (value < cur &&
           !min_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
  }

  static size_t BucketFor(uint64_t v) {
    if (v == 0) return 0;
    const size_t b = static_cast<size_t>(std::bit_width(v));
    return b < kNumBuckets ? b : kNumBuckets - 1;
  }
  static uint64_t BucketLowerBound(size_t i) {
    return i == 0 ? 0 : (uint64_t{1} << (i - 1));
  }
  static uint64_t BucketUpperBound(size_t i) { return uint64_t{1} << i; }

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    uint64_t buckets[kNumBuckets] = {};

    double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Linear interpolation inside the bucket containing quantile \p q
    /// (0 < q <= 1), clamped to the observed min/max.
    double Percentile(double q) const;
    size_t PopulatedBuckets() const;
  };
  Snapshot GetSnapshot() const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// RAII timer recording elapsed nanoseconds into a histogram.
class LatencyTimer {
 public:
  explicit LatencyTimer(Histogram* h) : h_(h), start_(NowNanos()) {}
  ~LatencyTimer() { h_->Record(NowNanos() - start_); }
  GISTCR_DISALLOW_COPY_AND_ASSIGN(LatencyTimer);

 private:
  Histogram* h_;
  uint64_t start_;
};

/// Thread-safe registry of named metrics. Registration (GetX) takes a
/// mutex; the returned pointers are stable for the registry's lifetime, so
/// hot paths resolve once and then update lock-free. Names are dotted
/// ("bp.hits", "wal.fsync_ns"); see DESIGN.md "Observability" for the
/// catalogue.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  GISTCR_DISALLOW_COPY_AND_ASSIGN(MetricsRegistry);

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Human-readable dump, sorted by name.
  void DumpText(std::string* out) const;
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  void DumpJson(std::string* out) const;
  /// Prometheus text exposition format (version 0.0.4): every metric name
  /// is sanitized and prefixed "gistcr_", each metric gets a `# TYPE`
  /// line, and histograms expose cumulative `le` buckets plus `+Inf`,
  /// `_sum` and `_count` series.
  void DumpPrometheus(std::string* out) const;

  /// Process-global registry used by components constructed without an
  /// explicit one (standalone unit tests); a Database always supplies its
  /// own so metrics reset with each instance.
  static MetricsRegistry* Fallback();

  /// Resolves null to the fallback registry.
  static MetricsRegistry* OrFallback(MetricsRegistry* reg) {
    return reg != nullptr ? reg : Fallback();
  }

 private:
  mutable Mutex mu_{GISTCR_LOCK_RANK(kMetrics, "obs.metrics.mu")};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      GISTCR_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GISTCR_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GISTCR_GUARDED_BY(mu_);
};

/// Maps a dotted registry name ("bp.io_read_ns") onto a valid Prometheus
/// metric name ("gistcr_bp_io_read_ns"): invalid characters become '_',
/// a leading digit gets an extra '_', and the "gistcr_" prefix is added.
std::string PrometheusSanitizeName(const std::string& name);

/// Escapes a label value for the text exposition format: backslash,
/// double-quote and newline are backslash-escaped.
std::string PrometheusEscapeLabel(const std::string& value);

}  // namespace obs
}  // namespace gistcr

#endif  // GISTCR_OBS_METRICS_H_
