#ifndef GISTCR_COMMON_TYPES_H_
#define GISTCR_COMMON_TYPES_H_

#include <cstdint>
#include <functional>

namespace gistcr {

/// Identifier of an 8 KiB page within the database file.
using PageId = uint32_t;
constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Log sequence number: byte offset of a record in the log file (classic
/// ARIES choice; monotonically increasing, so usable as the tree-global
/// node-sequence-number source, paper section 10.1).
using Lsn = uint64_t;
constexpr Lsn kInvalidLsn = 0;

/// Transaction identifier. Id 0 is reserved for "no transaction" (e.g. the
/// delete mark of a live leaf entry).
using TxnId = uint64_t;
constexpr TxnId kInvalidTxnId = 0;

/// Node sequence number (paper section 3): drawn from a tree-global
/// monotonically increasing counter and bumped on the node being split.
using Nsn = uint64_t;

/// Record identifier: locates a data record in the heap data store.
/// Packed as (heap page id << 16) | slot. GiST leaf entries carry RIDs;
/// two-phase data-record locking locks the RID value.
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  uint64_t Pack() const {
    return (static_cast<uint64_t>(page_id) << 16) | slot;
  }
  static Rid Unpack(uint64_t v) {
    Rid r;
    r.page_id = static_cast<PageId>(v >> 16);
    r.slot = static_cast<uint16_t>(v & 0xFFFF);
    return r;
  }

  bool operator==(const Rid& o) const {
    return page_id == o.page_id && slot == o.slot;
  }
  bool operator!=(const Rid& o) const { return !(*this == o); }
  bool operator<(const Rid& o) const { return Pack() < o.Pack(); }
};

constexpr uint32_t kPageSize = 8192;

}  // namespace gistcr

namespace std {
template <>
struct hash<gistcr::Rid> {
  size_t operator()(const gistcr::Rid& r) const {
    return std::hash<uint64_t>()(r.Pack());
  }
};
}  // namespace std

#endif  // GISTCR_COMMON_TYPES_H_
