// Runtime lock-order detector internals. This file deliberately uses the
// raw std primitives: the detector is called from inside the annotated
// wrappers, so going through them again would recurse.
// gistcr-lint: allow-file(raw-latch-primitive)

#include "common/deadlock_detector.h"

#if GISTCR_DEADLOCK_DETECTOR

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gistcr {
namespace deadlock {
namespace {

struct Held {
  const void* id;
  LockRank rank;
  const char* name;
};

std::vector<Held>& Tls() {
  thread_local std::vector<Held> held;
  return held;
}

struct Node {
  const char* name = nullptr;
  LockRank rank = LockRank::kUnranked;
  // out-edge -> held-lock stack of the thread that first created it.
  std::unordered_map<const void*, std::string> out;
};

struct Graph {
  std::mutex mu;
  std::unordered_map<const void*, Node> nodes;
  size_t edges = 0;
};

Graph& G() {
  static Graph* g = new Graph();  // leaked: alive through thread exit
  return *g;
}

// One graph identity per page-latch rank class. Buffer frames are
// recycled across pages, so instance identity would alias unrelated
// pages; the class node is stable and still captures cross-class order.
const void* ClassId(LockRank r) {
  static char ids[5];
  switch (r) {
    case LockRank::kNodeLatch:
      return &ids[0];
    case LockRank::kMetaLatch:
      return &ids[1];
    case LockRank::kBitmapLatch:
      return &ids[2];
    case LockRank::kHeapLatch:
      return &ids[3];
    default:
      return &ids[4];
  }
}

const char* ClassName(LockRank r) {
  switch (r) {
    case LockRank::kNodeLatch:
      return "latch.node";
    case LockRank::kMetaLatch:
      return "latch.meta";
    case LockRank::kBitmapLatch:
      return "latch.bitmap";
    case LockRank::kHeapLatch:
      return "latch.heap";
    default:
      return "latch.other";
  }
}

std::string FormatStack(const std::vector<Held>& held) {
  std::string out;
  for (const Held& h : held) {
    if (!out.empty()) out += " -> ";
    out += h.name != nullptr ? h.name : "?";
    out += " (";
    out += std::to_string(static_cast<int>(h.rank));
    out += ")";
  }
  return out.empty() ? std::string("<none>") : out;
}

[[noreturn]] void Fail(const char* kind, const char* acquiring, LockRank rank,
                       const std::string& detail) {
  std::fprintf(stderr,
               "gistcr deadlock detector: %s\n"
               "  acquiring: %s (rank %d)\n"
               "  this thread holds: %s\n"
               "%s",
               kind, acquiring, static_cast<int>(rank),
               FormatStack(Tls()).c_str(), detail.c_str());
  std::fflush(stderr);
  std::abort();
}

// DFS: is `target` reachable from `from` over the edge graph? Caller
// holds G().mu.
bool ReachableLocked(const void* from, const void* target) {
  std::vector<const void*> stack{from};
  std::unordered_set<const void*> seen;
  while (!stack.empty()) {
    const void* cur = stack.back();
    stack.pop_back();
    if (cur == target) return true;
    if (!seen.insert(cur).second) continue;
    auto it = G().nodes.find(cur);
    if (it == G().nodes.end()) continue;
    for (const auto& [next, _ev] : it->second.out) stack.push_back(next);
  }
  return false;
}

std::vector<const void*> CyclePathLocked(const void* from, const void* to) {
  // Rebuild one from->to path for the report (graphs here are tiny).
  std::unordered_map<const void*, const void*> parent;
  std::vector<const void*> stack{from};
  std::unordered_set<const void*> seen{from};
  while (!stack.empty()) {
    const void* cur = stack.back();
    stack.pop_back();
    if (cur == to) break;
    auto it = G().nodes.find(cur);
    if (it == G().nodes.end()) continue;
    for (const auto& [next, _ev] : it->second.out) {
      if (seen.insert(next).second) {
        parent[next] = cur;
        stack.push_back(next);
      }
    }
  }
  std::vector<const void*> path{to};
  while (path.back() != from) {
    auto it = parent.find(path.back());
    if (it == parent.end()) break;
    path.push_back(it->second);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

const char* NodeNameLocked(const void* id) {
  auto it = G().nodes.find(id);
  return (it != G().nodes.end() && it->second.name != nullptr)
             ? it->second.name
             : "?";
}

// Shared acquire bookkeeping. `checked` is false for try-acquires (they
// cannot block, so neither rank order nor graph cycles apply).
void Acquire(const void* id, LockRank rank, const char* name, bool checked) {
  std::vector<Held>& held = Tls();
  if (checked && !held.empty()) {
    const Held* top = &held[0];
    for (const Held& h : held) {
      if (h.rank > top->rank) top = &h;
    }
    if (rank < top->rank) {
      Fail("lock rank inversion", name, rank,
           "  declared order requires ranks to increase; see "
           "common/lock_rank.h\n");
    }
    if (rank == top->rank && !RankAllowsCoupling(rank) && top->id != id) {
      Fail("same-rank acquisition without coupling allowance", name, rank,
           "  two locks of one rank class may not nest unless the rank is "
           "marked `coupling` in common/lock_rank.h\n");
    }
    if (top->id == id && !RankAllowsCoupling(rank)) {
      Fail("recursive acquisition", name, rank, "");
    }

    std::lock_guard<std::mutex> g(G().mu);
    Node& n = G().nodes[id];
    n.name = name;
    n.rank = rank;
    bool added = false;
    for (const Held& h : held) {
      if (h.id == id) continue;  // coupling self-edge on a class node
      Node& hn = G().nodes[h.id];
      hn.name = h.name;
      hn.rank = h.rank;
      if (hn.out.emplace(id, FormatStack(held)).second) {
        G().edges++;
        added = true;
      }
    }
    if (added) {
      for (const Held& h : held) {
        if (h.id == id) continue;
        if (ReachableLocked(id, h.id)) {
          const std::vector<const void*> path = CyclePathLocked(id, h.id);
          std::string detail = "  cycle:";
          for (const void* p : path) {
            detail += " ";
            detail += NodeNameLocked(p);
            detail += " ->";
          }
          detail += " ";
          detail += name != nullptr ? name : "?";
          detail += "\n";
          // The reverse path's first edge records the stack of the thread
          // that first took these locks in the opposite order.
          if (path.size() >= 2) {
            auto it = G().nodes.find(path[0]);
            if (it != G().nodes.end()) {
              auto ev = it->second.out.find(path[1]);
              if (ev != it->second.out.end()) {
                detail += "  conflicting hold (recorded when " +
                          std::string(NodeNameLocked(path[0])) +
                          " was taken first): " + ev->second + "\n";
              }
            }
          }
          Fail("lock-order cycle", name, rank, detail);
        }
      }
    }
  }
  held.push_back(Held{id, rank, name});
}

void Release(const void* id) {
  std::vector<Held>& held = Tls();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->id == id) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

void OnLock(const void* lock, LockRank rank, const char* name) {
  if (rank == LockRank::kUnranked) return;
  Acquire(lock, rank, name, /*checked=*/true);
}

void OnTryLock(const void* lock, LockRank rank, const char* name) {
  if (rank == LockRank::kUnranked) return;
  Acquire(lock, rank, name, /*checked=*/false);
}

void OnUnlock(const void* lock, LockRank rank) {
  if (rank == LockRank::kUnranked) return;
  Release(lock);
}

LockRank PageRankFor(uint8_t page_type) {
  // Raw PageType values (storage/page.h): kFree=0, kMeta=1, kAllocMap=2,
  // kGistNode=3, kHeap=4. Fresh pages classify as tree nodes: they are
  // latched alongside tree pages (splits, root growth) or under the
  // data-store mutex, both of which sit below kNodeLatch.
  switch (page_type) {
    case 1:
      return LockRank::kMetaLatch;
    case 2:
      return LockRank::kBitmapLatch;
    case 4:
      return LockRank::kHeapLatch;
    default:
      return LockRank::kNodeLatch;
  }
}

void OnPageLatch(LockRank cls) {
  Acquire(ClassId(cls), cls, ClassName(cls), /*checked=*/true);
}

void OnPageTryLatch(LockRank cls) {
  Acquire(ClassId(cls), cls, ClassName(cls), /*checked=*/false);
}

void OnPageUnlatch(LockRank cls) { Release(ClassId(cls)); }

size_t HeldCount() { return Tls().size(); }

size_t EdgeCount() {
  std::lock_guard<std::mutex> g(G().mu);
  return G().edges;
}

}  // namespace deadlock
}  // namespace gistcr

#endif  // GISTCR_DEADLOCK_DETECTOR
