#ifndef GISTCR_COMMON_MUTEX_H_
#define GISTCR_COMMON_MUTEX_H_

// This header IS the sanctioned wrapper layer around the std primitives;
// everything else in the tree must go through it.
// gistcr-lint: allow-file(raw-latch-primitive)

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/deadlock_detector.h"
#include "common/lock_rank.h"
#include "common/thread_annotations.h"
#include "util/macros.h"

namespace gistcr {

/// \file
/// Capability-annotated synchronization primitives.
///
/// libstdc++'s std::mutex carries no Clang capability attributes, so code
/// that wants `-Werror=thread-safety` checking must go through these
/// wrappers. They are zero-cost shims over the std types; the only API
/// difference is that condition-variable waits take the gistcr::Mutex
/// directly (CondVar::Wait / WaitFor) instead of a std::unique_lock, which
/// keeps the lock state visible to the static analysis.
///
/// tools/gistcr_lint.py rule `raw-latch-primitive` rejects direct use of
/// std::mutex / std::lock_guard / pthread primitives outside this header
/// and the two RAII latch wrappers (PageGuard, TreeLatch).

/// Annotated exclusive mutex. Construct long-lived instances with a rank
/// from the global hierarchy:
///
///   Mutex mu_{GISTCR_LOCK_RANK(kWal, "wal.mu")};
///
/// In deadlock-detector builds (GISTCR_DEADLOCK_DETECTOR) every blocking
/// acquisition of a ranked mutex is order-checked against the per-thread
/// held stack and the global acquisition-edge graph; unranked (default
/// constructed) mutexes are invisible to the detector. In release builds
/// the macro and the hooks compile to nothing.
class GISTCR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
#if GISTCR_DEADLOCK_DETECTOR
  Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
#endif
  GISTCR_DISALLOW_COPY_AND_ASSIGN(Mutex);

  void lock() GISTCR_ACQUIRE() {
#if GISTCR_DEADLOCK_DETECTOR
    deadlock::OnLock(this, rank_, name_);
#endif
    mu_.lock();
  }
  void unlock() GISTCR_RELEASE() {
    mu_.unlock();
#if GISTCR_DEADLOCK_DETECTOR
    deadlock::OnUnlock(this, rank_);
#endif
  }
  bool try_lock() GISTCR_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if GISTCR_DEADLOCK_DETECTOR
    deadlock::OnTryLock(this, rank_, name_);
#endif
    return true;
  }

  /// The wrapped std::mutex, for CondVar's adopt/release dance only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
#if GISTCR_DEADLOCK_DETECTOR
  const LockRank rank_ = LockRank::kUnranked;
  const char* const name_ = nullptr;
#endif
};

/// Annotated reader-writer mutex (buffer-frame latches, the coarse
/// tree-wide latch).
class GISTCR_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
#if GISTCR_DEADLOCK_DETECTOR
  SharedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
#endif
  GISTCR_DISALLOW_COPY_AND_ASSIGN(SharedMutex);

  void lock() GISTCR_ACQUIRE() {
#if GISTCR_DEADLOCK_DETECTOR
    deadlock::OnLock(this, rank_, name_);
#endif
    mu_.lock();
  }
  void unlock() GISTCR_RELEASE() {
    mu_.unlock();
#if GISTCR_DEADLOCK_DETECTOR
    deadlock::OnUnlock(this, rank_);
#endif
  }
  bool try_lock() GISTCR_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if GISTCR_DEADLOCK_DETECTOR
    deadlock::OnTryLock(this, rank_, name_);
#endif
    return true;
  }
  void lock_shared() GISTCR_ACQUIRE_SHARED() {
#if GISTCR_DEADLOCK_DETECTOR
    deadlock::OnLock(this, rank_, name_);
#endif
    mu_.lock_shared();
  }
  void unlock_shared() GISTCR_RELEASE_SHARED() {
    mu_.unlock_shared();
#if GISTCR_DEADLOCK_DETECTOR
    deadlock::OnUnlock(this, rank_);
#endif
  }
  bool try_lock_shared() GISTCR_TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
#if GISTCR_DEADLOCK_DETECTOR
    deadlock::OnTryLock(this, rank_, name_);
#endif
    return true;
  }

 private:
  std::shared_mutex mu_;
#if GISTCR_DEADLOCK_DETECTOR
  const LockRank rank_ = LockRank::kUnranked;
  const char* const name_ = nullptr;
#endif
};

/// RAII exclusive lock over a Mutex; relockable (Unlock/Lock) so lock
/// drops around blocking calls stay visible to the analysis.
class GISTCR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GISTCR_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() GISTCR_RELEASE() {
    if (held_) mu_.unlock();
  }
  GISTCR_DISALLOW_COPY_AND_ASSIGN(MutexLock);

  void Unlock() GISTCR_RELEASE() {
    GISTCR_DCHECK(held_);
    held_ = false;
    mu_.unlock();
  }
  void Lock() GISTCR_ACQUIRE() {
    GISTCR_DCHECK(!held_);
    mu_.lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_;
};

/// RAII shared lock over a SharedMutex.
class GISTCR_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) GISTCR_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedLock() GISTCR_RELEASE() { mu_.unlock_shared(); }
  GISTCR_DISALLOW_COPY_AND_ASSIGN(SharedLock);

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to gistcr::Mutex. Waits take the Mutex (whose
/// hold the caller declares with GISTCR_REQUIRES / a MutexLock in scope)
/// rather than a std::unique_lock; predicates stay at the call site as
/// explicit `while (!cond) cv.Wait(mu);` loops so the analysis sees the
/// guarded reads under the lock.
class CondVar {
 public:
  CondVar() = default;
  GISTCR_DISALLOW_COPY_AND_ASSIGN(CondVar);

  /// Atomically releases \p mu, blocks, and reacquires before returning.
  void Wait(Mutex& mu) GISTCR_REQUIRES(mu) {
    std::unique_lock<std::mutex> l(mu.native(), std::adopt_lock);
    cv_.wait(l);
    l.release();  // the caller continues to own the (reacquired) mutex
  }

  /// Bounded wait; returns false on timeout, true when notified.
  template <class Rep, class Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& d)
      GISTCR_REQUIRES(mu) {
    std::unique_lock<std::mutex> l(mu.native(), std::adopt_lock);
    const auto r = cv_.wait_for(l, d);
    l.release();
    return r == std::cv_status::no_timeout;
  }

  /// Deadline wait; returns false once the deadline has passed.
  template <class Clock, class Duration>
  bool WaitUntil(Mutex& mu, const std::chrono::time_point<Clock, Duration>& t)
      GISTCR_REQUIRES(mu) {
    std::unique_lock<std::mutex> l(mu.native(), std::adopt_lock);
    const auto r = cv_.wait_until(l, t);
    l.release();
    return r == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gistcr

#endif  // GISTCR_COMMON_MUTEX_H_
