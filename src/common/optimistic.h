#ifndef GISTCR_COMMON_OPTIMISTIC_H_
#define GISTCR_COMMON_OPTIMISTIC_H_

#include <cstdint>

#include "util/macros.h"

namespace gistcr {

/// \file
/// The optimistic-read discipline (DESIGN.md section 13).
///
/// An *optimistic section* is a region of code that reads buffer-pool pages
/// without holding their latches, relying on the per-frame version word
/// (Frame::version) to detect concurrent modification and restart. Inside
/// such a section the thread must never block on a latch: a writer holding
/// the X latch bumps the version *before* releasing it, so an optimistic
/// reader that blocked behind that writer could deadlock-by-livelock
/// (validate-fail -> retry -> block again) and, worse, blocking latch
/// acquisition while holding snapshot state defeats the entire point of the
/// latch-free read path. Non-blocking try-acquires are allowed (they cannot
/// wait behind a writer).
///
/// The rule is enforced three ways:
///  - statically, by tools/gistcr_lint.py rule `latch-inside-optimistic-
///    section` (no RLatch/WLatch/lock/lock_shared while an
///    OptimisticReadScope is live in the enclosing scope);
///  - at runtime, by GISTCR_DCHECK(!InOptimisticSection()) in
///    PageGuard::RLatch/WLatch;
///  - dynamically, by TSan over the torture suites (the snapshot copy
///    itself carries a documented suppression; see tsan.suppressions).

namespace internal {
/// Nesting depth of optimistic sections on this thread. A plain counter
/// (not bool) so a fallback path that re-enters optimistically after a
/// latched sub-step keeps the bookkeeping straight.
inline thread_local uint32_t optimistic_depth = 0;
}  // namespace internal

/// True while the calling thread is inside an OptimisticReadScope.
inline bool InOptimisticSection() {
  return internal::optimistic_depth != 0;
}

/// RAII marker for an optimistic section. Declare one in the scope that
/// performs version-validated latch-free page reads; its lifetime defines
/// the region in which blocking latch acquisition is forbidden.
class OptimisticReadScope {
 public:
  OptimisticReadScope() { internal::optimistic_depth++; }
  ~OptimisticReadScope() {
    GISTCR_DCHECK(internal::optimistic_depth > 0);
    internal::optimistic_depth--;
  }
  GISTCR_DISALLOW_COPY_AND_ASSIGN(OptimisticReadScope);
};

}  // namespace gistcr

#endif  // GISTCR_COMMON_OPTIMISTIC_H_
