#ifndef GISTCR_COMMON_LOCK_RANK_H_
#define GISTCR_COMMON_LOCK_RANK_H_

#include <cstdint>

namespace gistcr {

/// \file
/// The whole-program lock hierarchy (DESIGN.md section 15).
///
/// Every long-lived Mutex/SharedMutex in the tree declares its position in
/// one global partial order via GISTCR_LOCK_RANK; page latches derive a
/// rank dynamically from the latched page's type (PageGuard). The runtime
/// deadlock detector (common/deadlock_detector.h, debug/sanitizer builds)
/// enforces that ranks are acquired in strictly increasing order — equal
/// ranks only where the `coupling` marker below allows it — and the static
/// analyzer (tools/gistcr_lint.py) checks the same table against the
/// acquisition graph it extracts from the sources.
///
/// The numeric gaps are deliberate: new subsystems slot in without
/// renumbering. The `// coupling` trailing comments are machine-read by
/// tools/gistcr_lint.py — keep the format `kName = N,  // coupling`.
enum class LockRank : uint16_t {
  kUnranked = 0,  ///< default-constructed wrapper: invisible to the detector

  // Outermost: connection/session lifecycle and database daemons. These
  // are held across whole operations (drain-time aborts run under the
  // server mutex; a maintenance pass runs under its daemon mutex).
  kServer = 100,
  kDbMaintenance = 150,
  kDbRecovery = 155,
  kDbWriter = 160,
  kDbIndexes = 170,

  // Tree-level serialization: at most one GC pass per index, then the
  // paper's coarse/hybrid tree latch taken at operation start.
  kGistGc = 200,
  kTreeLatch = 250,

  // Heap-chain tail maintenance serializer (held across tail page latches
  // and allocator calls in DataStore::Insert/GrowChain).
  kDataStore = 300,

  // Page latches, ranked by page type. Same-rank re-acquisition is the
  // latch-coupling allowance; the top-down/left-right order *within* the
  // rank is the tree protocol's job (NSN/rightlink), not the hierarchy's.
  // Fresh pages (PageType::kFree, just returned by NewPage) classify as
  // kNodeLatch: they are only ever latched alongside tree pages (splits,
  // root growth) or under the data-store mutex (chain growth).
  kNodeLatch = 350,  // coupling
  kMetaLatch = 400,
  kAllocator = 420,
  kBitmapLatch = 450,
  kHeapLatch = 470,  // coupling

  // Buffer-pool shard mutex: taken by Fetch/NewPage/Unpin while page
  // latches are held (latch-coupling descent pins children), never held
  // across I/O or any other lock.
  kBpShard = 480,

  // Instant-restart recovery gate (DESIGN.md section 16): consulted on
  // the Fetch return path, i.e. potentially under any page latch but
  // never under the shard mutex, and never held across the replay itself
  // (the gate releases its mutex before redoing the claimed page).
  kRecoveryGate = 490,

  // Lock manager: shard mutex first, then the per-txn held-set shard and
  // the pending-wait table (SetPending/ClearPending run under the shard
  // mutex). Node-space lock calls under a page latch are try-only.
  kLockShard = 500,
  kLockTxnShard = 520,
  kLockPending = 540,

  // Predicate table (attached while the node latch is held) and the
  // transaction table.
  kPredicates = 560,
  kTxnManager = 580,

  // MVCC bookkeeping. Never nested among themselves; Visible() is called
  // with a node latch held, AdvanceDurable holds only kMvccStamping.
  kMvccSnap = 600,
  kMvccPending = 610,
  kMvccShard = 620,
  kMvccStamping = 630,

  // WAL mutex: innermost of the protocol locks — appends happen under
  // page latches and the allocator/data-store mutexes, and the flusher
  // releases it across every pwrite/fdatasync.
  kWal = 700,

  // Leaves: fault injection hooks and observability. Crash points fire
  // under arbitrary protocol locks; trace/slow-op/metrics mutexes guard
  // memory-only sections and acquire nothing further.
  kFaultInjector = 750,
  kTrace = 800,
  kSlowOps = 810,
  kMetrics = 820,

  // Scratch rank for tests of the detector itself (coupling-allowed so
  // deliberate cycles reach the edge graph rather than the rank check).
  kScratch = 900,  // coupling
};

/// Same-rank re-acquisition allowance (hand-over-hand coupling).
constexpr bool RankAllowsCoupling(LockRank r) {
  return r == LockRank::kNodeLatch || r == LockRank::kHeapLatch ||
         r == LockRank::kScratch;
}

}  // namespace gistcr

// Rank annotation for Mutex/SharedMutex member initializers:
//
//   Mutex mu_{GISTCR_LOCK_RANK(kWal, "wal.mu")};
//
// expands to the ranked constructor arguments when the runtime deadlock
// detector is compiled in and to nothing (default, zero-cost constructor)
// otherwise. tools/gistcr_lint.py reads these annotations from the source
// text either way, so the static hierarchy check does not depend on build
// flags.
#if GISTCR_DEADLOCK_DETECTOR
#define GISTCR_LOCK_RANK(rank, name) ::gistcr::LockRank::rank, name
#else
#define GISTCR_LOCK_RANK(rank, name)
#endif

#endif  // GISTCR_COMMON_LOCK_RANK_H_
