#ifndef GISTCR_COMMON_THREAD_ANNOTATIONS_H_
#define GISTCR_COMMON_THREAD_ANNOTATIONS_H_

/// \file
/// Clang thread-safety-analysis attribute macros.
///
/// The macros expand to Clang `capability` attributes when compiling with
/// Clang (where `-Wthread-safety` checks them; CI builds with
/// `-Werror=thread-safety`) and to nothing everywhere else, so GCC builds
/// are unaffected. See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
/// and DESIGN.md §10 "Latch discipline and enforcement" for which protocol
/// invariant each annotation enforces and for the escape-hatch policy.
///
/// The standard-library mutex types carry no capability attributes under
/// libstdc++, so annotated code must use the wrappers in common/mutex.h
/// (gistcr::Mutex, gistcr::SharedMutex, gistcr::MutexLock, gistcr::CondVar)
/// instead of the std types directly — tools/gistcr_lint.py rule
/// `raw-latch-primitive` enforces that.

#if defined(__clang__) && !defined(SWIG)
#define GISTCR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GISTCR_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability ("mutex", "shared_mutex", ...).
#define GISTCR_CAPABILITY(x) GISTCR_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime brackets a capability acquisition.
#define GISTCR_SCOPED_CAPABILITY GISTCR_THREAD_ANNOTATION(scoped_lockable)

/// Data members that may only be touched while holding the capability.
#define GISTCR_GUARDED_BY(x) GISTCR_THREAD_ANNOTATION(guarded_by(x))
#define GISTCR_PT_GUARDED_BY(x) GISTCR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Static lock-order declarations.
#define GISTCR_ACQUIRED_BEFORE(...) \
  GISTCR_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define GISTCR_ACQUIRED_AFTER(...) \
  GISTCR_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The caller must hold the capability (exclusively / shared) on entry.
#define GISTCR_REQUIRES(...) \
  GISTCR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GISTCR_REQUIRES_SHARED(...) \
  GISTCR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the capability.
#define GISTCR_ACQUIRE(...) \
  GISTCR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GISTCR_ACQUIRE_SHARED(...) \
  GISTCR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define GISTCR_RELEASE(...) \
  GISTCR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GISTCR_RELEASE_SHARED(...) \
  GISTCR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define GISTCR_RELEASE_GENERIC(...) \
  GISTCR_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Conditional acquisition; first argument is the success return value.
#define GISTCR_TRY_ACQUIRE(...) \
  GISTCR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define GISTCR_TRY_ACQUIRE_SHARED(...) \
  GISTCR_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (deadlock prevention).
#define GISTCR_EXCLUDES(...) GISTCR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held.
#define GISTCR_ASSERT_CAPABILITY(x) \
  GISTCR_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the capability.
#define GISTCR_RETURN_CAPABILITY(x) GISTCR_THREAD_ANNOTATION(lock_returned(x))

/// Turns the analysis off for one function. Policy (DESIGN.md §10): only
/// for runtime-conditional lock flow the static analysis cannot model
/// (e.g. PageGuard::Unlatch dispatching on which latch mode is held); every
/// use must carry a comment saying which dynamic check covers the gap.
#define GISTCR_NO_THREAD_SAFETY_ANALYSIS \
  GISTCR_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // GISTCR_COMMON_THREAD_ANNOTATIONS_H_
