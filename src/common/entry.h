#ifndef GISTCR_COMMON_ENTRY_H_
#define GISTCR_COMMON_ENTRY_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "util/coding.h"

namespace gistcr {

/// One index entry, decoupled from any on-page representation. In internal
/// nodes `value` is a child PageId and `del_txn` is unused; in leaves
/// `value` is a packed Rid and `del_txn` is the transaction that logically
/// deleted the entry (kInvalidTxnId when live), per the paper's logical
/// deletion scheme (section 7).
struct IndexEntry {
  std::string key;        ///< Bounding predicate (internal) or key (leaf).
  uint64_t value = 0;     ///< Child PageId or packed Rid.
  TxnId del_txn = kInvalidTxnId;

  bool deleted() const { return del_txn != kInvalidTxnId; }

  void EncodeTo(std::string* dst) const {
    PutLengthPrefixed(dst, key);
    PutFixed64(dst, value);
    PutFixed64(dst, del_txn);
  }
  bool DecodeFrom(Decoder* dec) {
    return dec->GetLengthPrefixed(&key) && dec->GetFixed64(&value) &&
           dec->GetFixed64(&del_txn);
  }
};

inline void EncodeEntryList(std::string* dst,
                            const std::vector<IndexEntry>& entries) {
  PutFixed32(dst, static_cast<uint32_t>(entries.size()));
  for (const IndexEntry& e : entries) e.EncodeTo(dst);
}

inline bool DecodeEntryList(Decoder* dec, std::vector<IndexEntry>* out) {
  uint32_t n;
  if (!dec->GetFixed32(&n)) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    IndexEntry e;
    if (!e.DecodeFrom(dec)) return false;
    out->push_back(std::move(e));
  }
  return true;
}

}  // namespace gistcr

#endif  // GISTCR_COMMON_ENTRY_H_
