#ifndef GISTCR_COMMON_DEADLOCK_DETECTOR_H_
#define GISTCR_COMMON_DEADLOCK_DETECTOR_H_

#include <cstddef>
#include <cstdint>

#include "common/lock_rank.h"

namespace gistcr {
namespace deadlock {

/// \file
/// Runtime lock-order detector (debug/sanitizer builds only).
///
/// Every blocking acquisition through the common/mutex.h wrappers (and the
/// page-latch paths in PageGuard) reports here. The detector keeps
///
///   - a per-thread stack of held locks, checked against the LockRank
///     table on every blocking acquire (a lower- or equal-rank acquire is
///     an immediate failure unless the rank allows coupling), and
///   - a global, cumulative acquisition-edge graph (abseil DeadlockCheck
///     style): held-lock -> acquired-lock edges with the holder's stack
///     recorded at first observation, plus an online cycle check on every
///     new edge.
///
/// The graph catches what ranks cannot: an A-before-B / B-before-A pair on
/// equal-rank (coupling-allowed) locks fires the first time the reversed
/// edge is *observed*, even if that particular interleaving did not
/// deadlock — which is how the PR 7 allocator ABBA would have surfaced in
/// any single test run. Violations print both held-lock stacks (the
/// current thread's and the one recorded when the conflicting edge was
/// created) and abort.
///
/// Long-lived mutexes participate as instances; page latches participate
/// as one graph node per rank class (frames are recycled across pages, so
/// instance identity would go stale). Try-acquires push onto the held
/// stack but are exempt from rank and cycle checks: they cannot block, so
/// they cannot close a wait cycle.

#if GISTCR_DEADLOCK_DETECTOR

/// Blocking acquire of a ranked mutex; call *before* the underlying lock
/// so a would-deadlock order is reported instead of hanging. No-op for
/// kUnranked.
void OnLock(const void* lock, LockRank rank, const char* name);

/// Successful try_lock: joins the held stack, no order checks.
void OnTryLock(const void* lock, LockRank rank, const char* name);

void OnUnlock(const void* lock, LockRank rank);

/// Page-latch class hooks (PageGuard / Frame latches). The class is
/// derived from the page type under the just-taken latch, so these run
/// post-acquire: cycles are detected on first observation of a reversed
/// order, not by pre-blocking.
LockRank PageRankFor(uint8_t page_type);
void OnPageLatch(LockRank cls);
void OnPageTryLatch(LockRank cls);
void OnPageUnlatch(LockRank cls);

/// Introspection for tests.
size_t HeldCount();
size_t EdgeCount();

#else  // !GISTCR_DEADLOCK_DETECTOR

inline void OnLock(const void*, LockRank, const char*) {}
inline void OnTryLock(const void*, LockRank, const char*) {}
inline void OnUnlock(const void*, LockRank) {}
inline LockRank PageRankFor(uint8_t) { return LockRank::kUnranked; }
inline void OnPageLatch(LockRank) {}
inline void OnPageTryLatch(LockRank) {}
inline void OnPageUnlatch(LockRank) {}
inline size_t HeldCount() { return 0; }
inline size_t EdgeCount() { return 0; }

#endif  // GISTCR_DEADLOCK_DETECTOR

}  // namespace deadlock
}  // namespace gistcr

#endif  // GISTCR_COMMON_DEADLOCK_DETECTOR_H_
