#ifndef GISTCR_UTIL_SLICE_H_
#define GISTCR_UTIL_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace gistcr {

/// A non-owning view over a byte range. Keys, predicates and payloads flow
/// through the GiST core as Slices; only the access-method extension knows
/// how to interpret the bytes.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s)  // NOLINT: implicit by design
      : data_(s.data()), size_(s.size()) {}
  Slice(const char* cstr)  // NOLINT: implicit by design
      : data_(cstr), size_(std::strlen(cstr)) {}

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  bool operator==(const Slice& other) const {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
  }
  bool operator!=(const Slice& other) const { return !(*this == other); }

  int compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return 1;
    }
    return r;
  }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace gistcr

#endif  // GISTCR_UTIL_SLICE_H_
