#ifndef GISTCR_UTIL_RANDOM_H_
#define GISTCR_UTIL_RANDOM_H_

#include <cstdint>

namespace gistcr {

/// Small deterministic PRNG (xorshift64*) for workload generators and tests.
/// Deterministic seeding keeps test failures and benchmark workloads
/// reproducible across runs.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability num/den.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

/// Zipfian generator over [0, n) with parameter theta, per the standard
/// Gray et al. "quickly generating billion-record databases" method. Used by
/// the skewed-workload benchmarks.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Random rng_;
};

}  // namespace gistcr

#endif  // GISTCR_UTIL_RANDOM_H_
