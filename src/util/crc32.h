#ifndef GISTCR_UTIL_CRC32_H_
#define GISTCR_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace gistcr {

/// CRC-32 (IEEE 802.3 polynomial) over \p n bytes starting at \p data,
/// seeded with \p init. Used to detect torn/garbage log records at the log
/// tail during restart.
uint32_t Crc32(const char* data, size_t n, uint32_t init = 0);

}  // namespace gistcr

#endif  // GISTCR_UTIL_CRC32_H_
