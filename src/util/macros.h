#ifndef GISTCR_UTIL_MACROS_H_
#define GISTCR_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Project-wide assertion and helper macros.

/// Aborts the process with a message when \p cond is false. Used for internal
/// invariants that indicate a programming error (never for user errors, which
/// are reported through Status).
#define GISTCR_CHECK(cond)                                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "GISTCR_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Like GISTCR_CHECK but compiled out in NDEBUG builds; for hot paths.
#ifdef NDEBUG
#define GISTCR_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define GISTCR_DCHECK(cond) GISTCR_CHECK(cond)
#endif

/// Propagates a non-OK Status from the current function.
#define GISTCR_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::gistcr::Status _st = (expr);               \
    if (!_st.ok()) return _st;                   \
  } while (0)

#define GISTCR_DISALLOW_COPY_AND_ASSIGN(Type) \
  Type(const Type&) = delete;                 \
  Type& operator=(const Type&) = delete

#endif  // GISTCR_UTIL_MACROS_H_
