#include "util/crc32.h"

namespace gistcr {

namespace {

struct Crc32Table {
  uint32_t t[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = i;
      for (int k = 0; k < 8; k++) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table* table = new Crc32Table();
  return *table;
}

}  // namespace

uint32_t Crc32(const char* data, size_t n, uint32_t init) {
  const Crc32Table& table = Table();
  uint32_t c = init ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; i++) {
    c = table.t[(c ^ static_cast<unsigned char>(data[i])) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace gistcr
