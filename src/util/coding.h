#ifndef GISTCR_UTIL_CODING_H_
#define GISTCR_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace gistcr {

/// Little-endian fixed-width integer (de)serialization helpers used by the
/// on-page layouts and the log-record wire format.

inline void EncodeFixed16(char* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

inline void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  EncodeFixed16(buf, v);
  dst->append(buf, 2);
}
inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

/// Appends a length-prefixed byte string (u32 length + bytes).
inline void PutLengthPrefixed(std::string* dst, Slice s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

/// Cursor-style reader over an encoded buffer; Get* return false on
/// underflow so callers can surface Status::Corruption.
class Decoder {
 public:
  explicit Decoder(Slice input) : p_(input.data()), end_(p_ + input.size()) {}

  bool GetFixed16(uint16_t* v) {
    if (end_ - p_ < 2) return false;
    *v = DecodeFixed16(p_);
    p_ += 2;
    return true;
  }
  bool GetFixed32(uint32_t* v) {
    if (end_ - p_ < 4) return false;
    *v = DecodeFixed32(p_);
    p_ += 4;
    return true;
  }
  bool GetFixed64(uint64_t* v) {
    if (end_ - p_ < 8) return false;
    *v = DecodeFixed64(p_);
    p_ += 8;
    return true;
  }
  bool GetLengthPrefixed(std::string* out) {
    uint32_t len;
    if (!GetFixed32(&len)) return false;
    if (end_ - p_ < static_cast<ptrdiff_t>(len)) return false;
    out->assign(p_, len);
    p_ += len;
    return true;
  }
  bool Done() const { return p_ == end_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  const char* p_;
  const char* end_;
};

}  // namespace gistcr

#endif  // GISTCR_UTIL_CODING_H_
