#ifndef GISTCR_UTIL_STATUS_H_
#define GISTCR_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/macros.h"

namespace gistcr {

/// Error model for the whole library. The project does not use exceptions;
/// every fallible operation returns a Status (or StatusOr<T>). Mirrors the
/// RocksDB/Arrow idiom.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kDeadlock = 5,        ///< Transaction chosen as deadlock victim.
    kDuplicateKey = 6,    ///< Unique-index violation (paper section 8).
    kAborted = 7,         ///< Transaction no longer active.
    kNoSpace = 8,         ///< Resource exhausted (pages, buffer frames).
    kNotSupported = 9,
    kBusy = 10,           ///< Conditional lock/latch not available.
  };

  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Deadlock(std::string msg = "") {
    return Status(Code::kDeadlock, std::move(msg));
  }
  static Status DuplicateKey(std::string msg = "") {
    return Status(Code::kDuplicateKey, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status NoSpace(std::string msg = "") {
    return Status(Code::kNoSpace, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsDeadlock() const { return code_ == Code::kDeadlock; }
  bool IsDuplicateKey() const { return code_ == Code::kDuplicateKey; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsNoSpace() const { return code_ == Code::kNoSpace; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsIOError() const { return code_ == Code::kIOError; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "Deadlock: victim txn 12".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string name;
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kNotFound: name = "NotFound"; break;
      case Code::kCorruption: name = "Corruption"; break;
      case Code::kInvalidArgument: name = "InvalidArgument"; break;
      case Code::kIOError: name = "IOError"; break;
      case Code::kDeadlock: name = "Deadlock"; break;
      case Code::kDuplicateKey: name = "DuplicateKey"; break;
      case Code::kAborted: name = "Aborted"; break;
      case Code::kNoSpace: name = "NoSpace"; break;
      case Code::kNotSupported: name = "NotSupported"; break;
      case Code::kBusy: name = "Busy"; break;
    }
    return msg_.empty() ? name : name + ": " + msg_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// A Status plus a value; valid to access value() only when ok().
template <typename T>
class StatusOr {
 public:
  StatusOr(Status s) : status_(std::move(s)) {  // NOLINT: implicit by design
    GISTCR_CHECK(!status_.ok());
  }
  StatusOr(T value)  // NOLINT: implicit by design
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  T& value() {
    GISTCR_CHECK(status_.ok());
    return value_;
  }
  const T& value() const {
    GISTCR_CHECK(status_.ok());
    return value_;
  }
  T&& MoveValue() {
    GISTCR_CHECK(status_.ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace gistcr

#endif  // GISTCR_UTIL_STATUS_H_
