#include "net/wire.h"

namespace gistcr {
namespace net {

bool IsRequestOpcode(uint8_t op) {
  return op >= static_cast<uint8_t>(Opcode::kPing) &&
         op <= static_cast<uint8_t>(Opcode::kInspect);
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kPing: return "ping";
    case Opcode::kBegin: return "begin";
    case Opcode::kCommit: return "commit";
    case Opcode::kAbort: return "abort";
    case Opcode::kInsert: return "insert";
    case Opcode::kDelete: return "delete";
    case Opcode::kSearch: return "search";
    case Opcode::kStats: return "stats";
    case Opcode::kInspect: return "inspect";
    case Opcode::kPong: return "pong";
    case Opcode::kOk: return "ok";
    case Opcode::kError: return "error";
    case Opcode::kSearchBatch: return "search_batch";
    case Opcode::kSearchDone: return "search_done";
    case Opcode::kStatsReply: return "stats_reply";
    case Opcode::kInspectReply: return "inspect_reply";
  }
  return "unknown";
}

ErrorCode ErrorCodeFromStatus(const Status& s) {
  switch (s.code()) {
    case Status::Code::kOk: return ErrorCode::kInternal;  // caller bug
    case Status::Code::kNotFound: return ErrorCode::kNotFound;
    case Status::Code::kCorruption: return ErrorCode::kCorruption;
    case Status::Code::kInvalidArgument: return ErrorCode::kInvalidArgument;
    case Status::Code::kIOError: return ErrorCode::kIOError;
    case Status::Code::kDeadlock: return ErrorCode::kDeadlock;
    case Status::Code::kDuplicateKey: return ErrorCode::kDuplicateKey;
    case Status::Code::kAborted: return ErrorCode::kAborted;
    case Status::Code::kNoSpace: return ErrorCode::kNoSpace;
    case Status::Code::kNotSupported: return ErrorCode::kNotSupported;
    case Status::Code::kBusy: return ErrorCode::kBusy;
  }
  return ErrorCode::kInternal;
}

Status StatusFromError(ErrorCode code, const std::string& msg) {
  switch (code) {
    case ErrorCode::kNotFound: return Status::NotFound(msg);
    case ErrorCode::kCorruption: return Status::Corruption(msg);
    case ErrorCode::kInvalidArgument: return Status::InvalidArgument(msg);
    case ErrorCode::kIOError: return Status::IOError(msg);
    case ErrorCode::kDeadlock: return Status::Deadlock(msg);
    case ErrorCode::kDuplicateKey: return Status::DuplicateKey(msg);
    case ErrorCode::kAborted: return Status::Aborted(msg);
    case ErrorCode::kNoSpace: return Status::NoSpace(msg);
    case ErrorCode::kNotSupported: return Status::NotSupported(msg);
    case ErrorCode::kBusy: return Status::Busy(msg);
    case ErrorCode::kTimeout: return Status::Busy("timeout: " + msg);
    case ErrorCode::kShuttingDown: return Status::Aborted("shutdown: " + msg);
    case ErrorCode::kNoTransaction:
    case ErrorCode::kTransactionOpen:
    case ErrorCode::kUnknownIndex:
      return Status::InvalidArgument(std::string(ErrorCodeName(code)) +
                                     ": " + msg);
    case ErrorCode::kMalformedFrame:
    case ErrorCode::kBadVersion:
    case ErrorCode::kFrameTooLarge:
    case ErrorCode::kBadOpcode:
    case ErrorCode::kMalformedPayload:
      return Status::Corruption(std::string(ErrorCodeName(code)) + ": " +
                                msg);
    case ErrorCode::kInternal: break;
  }
  return Status::IOError("server error: " + msg);
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kCorruption: return "corruption";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kIOError: return "io_error";
    case ErrorCode::kDeadlock: return "deadlock";
    case ErrorCode::kDuplicateKey: return "duplicate_key";
    case ErrorCode::kAborted: return "aborted";
    case ErrorCode::kNoSpace: return "no_space";
    case ErrorCode::kNotSupported: return "not_supported";
    case ErrorCode::kBusy: return "busy";
    case ErrorCode::kMalformedFrame: return "malformed_frame";
    case ErrorCode::kBadVersion: return "bad_version";
    case ErrorCode::kFrameTooLarge: return "frame_too_large";
    case ErrorCode::kBadOpcode: return "bad_opcode";
    case ErrorCode::kMalformedPayload: return "malformed_payload";
    case ErrorCode::kNoTransaction: return "no_transaction";
    case ErrorCode::kTransactionOpen: return "transaction_open";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kUnknownIndex: return "unknown_index";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

void EncodeFrame(const Frame& f, std::string* out) {
  PutFixed32(out, kHeaderLen + static_cast<uint32_t>(f.payload.size()));
  out->push_back(static_cast<char>(kMagic));
  out->push_back(static_cast<char>(f.version));
  out->push_back(static_cast<char>(f.opcode));
  out->push_back(static_cast<char>(f.flags));
  PutFixed64(out, f.request_id);
  out->append(f.payload);
}

void EncodeErrorPayload(ErrorCode code, bool txn_aborted, Slice msg,
                        std::string* out) {
  PutFixed16(out, static_cast<uint16_t>(code));
  out->push_back(txn_aborted ? 1 : 0);
  PutLengthPrefixed(out, msg);
}

bool DecodeErrorPayload(Slice payload, ErrorCode* code, bool* txn_aborted,
                        std::string* msg) {
  if (payload.size() < 3) return false;
  *code = static_cast<ErrorCode>(DecodeFixed16(payload.data()));
  *txn_aborted = (payload.data()[2] != 0);
  Decoder rest(Slice(payload.data() + 3, payload.size() - 3));
  return rest.GetLengthPrefixed(msg);
}

FrameReader::Result FrameReader::Next(Frame* out) {
  Compact();
  const char* p = buf_.data() + consumed_;
  const size_t avail = buf_.size() - consumed_;
  if (avail < 4) return Result::kNeedMore;
  const uint32_t len = DecodeFixed32(p);
  if (len < kHeaderLen) return Result::kBadMagic;  // cannot hold a header
  if (len > kHeaderLen + max_payload_) return Result::kTooLarge;
  if (avail < 4 + static_cast<size_t>(len)) return Result::kNeedMore;
  const uint8_t magic = static_cast<uint8_t>(p[4]);
  const uint8_t version = static_cast<uint8_t>(p[5]);
  if (magic != kMagic) return Result::kBadMagic;
  if (version != kVersion) return Result::kBadVersion;
  out->version = version;
  out->opcode = static_cast<Opcode>(static_cast<uint8_t>(p[6]));
  out->flags = static_cast<uint8_t>(p[7]);
  out->request_id = DecodeFixed64(p + 8);
  out->payload.assign(p + 4 + kHeaderLen, len - kHeaderLen);
  consumed_ += 4 + len;
  return Result::kFrame;
}

void FrameReader::Compact() {
  // Reclaim consumed prefix once it dominates the buffer, amortizing the
  // move across many frames.
  if (consumed_ > 0 && (consumed_ >= buf_.size() || consumed_ > 64 * 1024)) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
}

}  // namespace net
}  // namespace gistcr
