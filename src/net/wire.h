#ifndef GISTCR_NET_WIRE_H_
#define GISTCR_NET_WIRE_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"
#include "util/status.h"

namespace gistcr {
namespace net {

/// The gistcr wire protocol: length-prefixed binary frames over a byte
/// stream (TCP). Every frame is
///
///   [u32 len][u8 magic][u8 version][u8 opcode][u8 flags][u64 request_id]
///   [payload: len - 12 bytes]
///
/// where `len` counts every byte after the length field itself (so the
/// minimum legal value is kHeaderLen = 12). All integers are little-endian
/// (the project-wide coding.h convention). `request_id` is chosen by the
/// client and echoed on every response frame belonging to the request,
/// which is what makes pipelining possible: a client may write N request
/// frames back-to-back and match the replies by id. The server executes
/// the requests of one connection strictly in order.
///
/// DESIGN.md section 9 is the normative spec (opcodes, payload layouts,
/// error codes).

constexpr uint8_t kMagic = 0x47;    ///< 'G'
constexpr uint8_t kVersion = 1;

/// Bytes between the length field and the payload.
constexpr uint32_t kHeaderLen = 12;

/// Hard cap on request payloads. A frame announcing more than this is a
/// protocol error and the connection is closed (the stream cannot be
/// resynchronized without trusting the bogus length).
constexpr uint32_t kMaxRequestPayload = 1u << 20;  // 1 MiB

/// Responses (search batches, metric dumps) may be larger.
constexpr uint32_t kMaxResponsePayload = 8u << 20;  // 8 MiB

/// Frame flags.
constexpr uint8_t kFlagWithRecords = 0x01;  ///< SEARCH: stream heap records.

enum class Opcode : uint8_t {
  // Requests.
  kPing = 0x01,
  kBegin = 0x02,
  kCommit = 0x03,
  kAbort = 0x04,
  kInsert = 0x05,
  kDelete = 0x06,   ///< logical delete (paper section 7)
  kSearch = 0x07,
  kStats = 0x08,    ///< payload: optional u8 format (0 JSON, 1 Prometheus)
  kInspect = 0x09,  ///< payload: u8 kind (see InspectKind)
  // Responses (high bit set).
  kPong = 0x81,
  kOk = 0x82,          ///< generic success; payload depends on the request
  kError = 0x83,
  kSearchBatch = 0x84, ///< one batch of qualifying entries
  kSearchDone = 0x85,  ///< terminates a search result stream
  kStatsReply = 0x86,
  kInspectReply = 0x87,  ///< JSON view payload
};

/// kInspect payload selector: which live view the server serializes.
enum class InspectKind : uint8_t {
  kSlowOps = 0,    ///< slow-op ring (JSON array of records)
  kWaitGraph = 1,  ///< lock-manager wait-for edges
  kBufferPool = 2, ///< per-shard occupancy
  kWal = 3,        ///< WAL flusher queue depth / durable horizon
  kRecovery = 4,   ///< instant-restart drain progress (pages pending)
};

bool IsRequestOpcode(uint8_t op);
const char* OpcodeName(Opcode op);

/// Error codes carried in kError payloads. Values 1..10 mirror
/// Status::Code numerically; 100+ are protocol-layer conditions that have
/// no engine Status equivalent.
enum class ErrorCode : uint16_t {
  kNotFound = 1,
  kCorruption = 2,
  kInvalidArgument = 3,
  kIOError = 4,
  kDeadlock = 5,
  kDuplicateKey = 6,
  kAborted = 7,
  kNoSpace = 8,
  kNotSupported = 9,
  kBusy = 10,

  kMalformedFrame = 100,  ///< bad magic / undersized header (fatal)
  kBadVersion = 101,      ///< unsupported protocol version (fatal)
  kFrameTooLarge = 102,   ///< announced length over the cap (fatal)
  kBadOpcode = 103,       ///< unknown or response-direction opcode
  kMalformedPayload = 104,///< opcode-level decode failure (non-fatal)
  kNoTransaction = 105,   ///< COMMIT/ABORT without an open transaction
  kTransactionOpen = 106, ///< BEGIN while one is already open
  kTimeout = 107,         ///< request expired in the server queue
  kShuttingDown = 108,    ///< server is draining; no new transactions
  kUnknownIndex = 109,    ///< index id not open on the server
  kInternal = 110,
};

ErrorCode ErrorCodeFromStatus(const Status& s);
/// Maps a wire error back to the closest Status (client side).
Status StatusFromError(ErrorCode code, const std::string& msg);
const char* ErrorCodeName(ErrorCode code);

/// A parsed frame. For requests, `payload` is the opcode-specific body.
struct Frame {
  uint8_t version = kVersion;
  Opcode opcode = Opcode::kPing;
  uint8_t flags = 0;
  uint64_t request_id = 0;
  std::string payload;
};

/// Serializes a frame (length prefix included) onto \p out.
void EncodeFrame(const Frame& f, std::string* out);

/// Error-frame payload: [u16 code][u8 txn_aborted][lp message].
/// `txn_aborted` tells the client its session transaction was rolled back
/// as a side effect (deadlock victim, disconnect, failed commit).
void EncodeErrorPayload(ErrorCode code, bool txn_aborted, Slice msg,
                        std::string* out);
bool DecodeErrorPayload(Slice payload, ErrorCode* code, bool* txn_aborted,
                        std::string* msg);

/// Incremental frame extractor over a growing byte buffer. Feed() appends
/// raw stream bytes; Next() pops one complete frame at a time. Header
/// validation (magic, version, length cap) happens here, so a poisoned
/// stream is detected before any payload is interpreted.
class FrameReader {
 public:
  explicit FrameReader(uint32_t max_payload) : max_payload_(max_payload) {}

  void Feed(const char* data, size_t n) { buf_.append(data, n); }

  enum class Result {
    kFrame,      ///< *out holds the next frame
    kNeedMore,   ///< buffer holds no complete frame yet
    kBadMagic,
    kBadVersion,
    kTooLarge,
  };
  Result Next(Frame* out);

  size_t buffered() const { return buf_.size() - consumed_; }

 private:
  void Compact();

  uint32_t max_payload_;
  std::string buf_;
  size_t consumed_ = 0;
};

}  // namespace net
}  // namespace gistcr

#endif  // GISTCR_NET_WIRE_H_
