#ifndef GISTCR_NET_SOCKET_H_
#define GISTCR_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "util/macros.h"
#include "util/status.h"

namespace gistcr {
namespace net {

/// Thin RAII + Status wrappers over POSIX TCP sockets. Everything the
/// server and client need and nothing more: listen, accept, connect,
/// EINTR-safe full writes and partial reads, with optional blocking-write
/// support on non-blocking descriptors (poll for writability).

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  GISTCR_DISALLOW_COPY_AND_ASSIGN(Socket);

  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept {
    if (this != &o) {
      Close();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Releases ownership of the descriptor.
  int Detach() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Close();

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (port 0 picks an ephemeral port, read it
/// back with \p bound_port). SO_REUSEADDR is set.
Status TcpListen(const std::string& host, uint16_t port, Socket* out,
                 uint16_t* bound_port);

/// Blocking connect; TCP_NODELAY is set on success.
Status TcpConnect(const std::string& host, uint16_t port, Socket* out);

/// Accepts one connection (listener must be readable); sets TCP_NODELAY
/// and O_NONBLOCK on the accepted socket.
Status TcpAccept(int listen_fd, Socket* out);

Status SetNonBlocking(int fd, bool nonblocking);

/// Writes all of \p n bytes. EINTR is retried; on a non-blocking socket
/// EAGAIN polls for writability (bounded by \p timeout_ms per wait,
/// 0 = wait forever). SIGPIPE is suppressed (MSG_NOSIGNAL).
Status WriteFully(int fd, const char* data, size_t n, int timeout_ms = 0);

/// Reads at most \p cap bytes. Returns bytes read via \p n_out; 0 bytes
/// with OK status means EOF on a blocking socket. On a non-blocking socket
/// EAGAIN yields Status::Busy.
Status ReadSome(int fd, char* buf, size_t cap, size_t* n_out);

/// Reads exactly \p n bytes (blocking sockets; used by the client).
/// EOF mid-read is an IOError.
Status ReadFully(int fd, char* buf, size_t n);

}  // namespace net
}  // namespace gistcr

#endif  // GISTCR_NET_SOCKET_H_
