#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace gistcr {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + strerror(errno));
}

Status ParseAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr->sin_addr.s_addr = htonl(INADDR_ANY);
    return Status::OK();
  }
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpListen(const std::string& host, uint16_t port, Socket* out,
                 uint16_t* bound_port) {
  sockaddr_in addr;
  GISTCR_RETURN_IF_ERROR(ParseAddr(host, port, &addr));
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Errno("socket");
  int one = 1;
  (void)setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(s.fd(), 128) != 0) return Errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&actual), &len) !=
        0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  GISTCR_RETURN_IF_ERROR(SetNonBlocking(s.fd(), true));
  *out = std::move(s);
  return Status::OK();
}

Status TcpConnect(const std::string& host, uint16_t port, Socket* out) {
  sockaddr_in addr;
  GISTCR_RETURN_IF_ERROR(
      ParseAddr(host.empty() ? "127.0.0.1" : host, port, &addr));
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Errno("socket");
  int rc;
  do {
    rc = ::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect");
  SetNoDelay(s.fd());
  *out = std::move(s);
  return Status::OK();
}

Status TcpAccept(int listen_fd, Socket* out) {
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Busy("no pending connection");
    }
    return Errno("accept");
  }
  Socket s(fd);
  SetNoDelay(fd);
  GISTCR_RETURN_IF_ERROR(SetNonBlocking(fd, true));
  *out = std::move(s);
  return Status::OK();
}

Status SetNonBlocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int want =
      nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Status WriteFully(int fd, const char* data, size_t n, int timeout_ms) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      const int rc = ::poll(&pfd, 1, timeout_ms == 0 ? -1 : timeout_ms);
      if (rc < 0 && errno != EINTR) return Errno("poll");
      if (rc == 0) return Status::IOError("write timeout");
      continue;
    }
    return Errno("send");
  }
  return Status::OK();
}

Status ReadSome(int fd, char* buf, size_t cap, size_t* n_out) {
  *n_out = 0;
  ssize_t r;
  do {
    r = ::recv(fd, buf, cap, 0);
  } while (r < 0 && errno == EINTR);
  if (r < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Busy("no data");
    }
    return Errno("recv");
  }
  *n_out = static_cast<size_t>(r);
  return Status::OK();
}

Status ReadFully(int fd, char* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t r;
    do {
      r = ::recv(fd, buf + off, n - off, 0);
    } while (r < 0 && errno == EINTR);
    if (r == 0) return Status::IOError("connection closed");
    if (r < 0) return Errno("recv");
    off += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace net
}  // namespace gistcr
