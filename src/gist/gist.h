#ifndef GISTCR_GIST_GIST_H_
#define GISTCR_GIST_GIST_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "db/page_allocator.h"
#include "gist/extension.h"
#include "gist/node.h"
#include "gist/nsn.h"
#include "gist/tree_latch.h"
#include "storage/buffer_pool.h"
#include "txn/lock_manager.h"
#include "txn/predicate_manager.h"
#include "txn/transaction_manager.h"
#include "util/status.h"
#include "wal/log_payloads.h"

namespace gistcr {

/// Which concurrency protocol the tree runs (benchmark C1 / Figure 1):
///  - kLink:   the paper's protocol — NSNs + rightlinks, no latch coupling,
///             no latches across I/O or lock waits.
///  - kCoarse: baseline — a tree-wide latch held for the whole operation
///             (search shared, updates exclusive), standing in for the
///             subtree-locking protocols of [BS77]. The NSN machinery stays
///             on (it is what lets operations re-position after releasing
///             the tree latch to block on locks).
///  - kUnsafeNoLink: test-only — concurrent access *without* split
///             detection, reproducing the lost-key anomaly of Figure 1.
enum class ConcurrencyProtocol : uint8_t { kLink, kCoarse, kUnsafeNoLink };

/// Where search predicates live (benchmark C2):
///  - kHybrid: the paper's mechanism — predicates attached to visited
///    nodes; inserts check only their target leaf (section 4.3).
///  - kGlobal: pure predicate locking (section 4.2) — one tree-global
///    list checked before any traversal starts.
enum class PredicateMode : uint8_t { kHybrid, kGlobal };

struct GistOptions {
  uint32_t index_id = 1;
  ConcurrencyProtocol protocol = ConcurrencyProtocol::kLink;
  PredicateMode pred_mode = PredicateMode::kHybrid;
  /// Test hook: cap live entries per node to force splits with few keys
  /// (0 = page-capacity bound).
  uint16_t max_entries = 0;
  /// Latch-free reads via optimistic lock coupling (DESIGN.md section 13):
  /// searches and cursors read nodes from version-validated snapshots
  /// instead of S-latching them, restarting the node visit on conflict.
  /// Effective only under kLink (split compensation is what makes the
  /// racy read safe) and outside the hybrid predicate-attach path, which
  /// needs the latched attach ordering; other configurations silently use
  /// the latched path. Writers always bump versions, so the knob can
  /// differ between concurrent trees on one pool.
  bool optimistic_reads = true;
};

/// Shared engine components a Gist operates on.
struct GistContext {
  BufferPool* pool = nullptr;
  LogManager* log = nullptr;
  TransactionManager* txns = nullptr;
  LockManager* locks = nullptr;
  PredicateManager* preds = nullptr;
  PageAllocator* alloc = nullptr;
  GlobalNsn* nsn = nullptr;
  /// Registry the tree's counters/histograms live in (null: process
  /// fallback registry).
  obs::MetricsRegistry* metrics = nullptr;
  /// Version store + timestamp oracle for snapshot reads (DESIGN.md
  /// section 14). Null: snapshot isolation unavailable; the transaction
  /// layer then downgrades kSnapshot begins to repeatable read, so the
  /// tree never sees a snapshot transaction.
  MvccManager* mvcc = nullptr;
};

struct SearchResult {
  std::string key;
  Rid rid;
};

/// Injection points for deterministic interleaving tests (Figure 1 / 2
/// scenarios). All default to no-ops.
struct GistTestHooks {
  std::function<void(PageId leaf)> after_locate_leaf;
  std::function<void(PageId node)> before_visit_node;
  std::function<void()> after_root_push;
  /// Crash injection: returning non-OK after the split's page updates but
  /// before its NTA-End aborts the operation mid-structure-modification —
  /// the restart-recovery scenario of paper section 9.
  std::function<Status()> before_split_nta_end;
  /// Fires inside GrowRoot after the Root-Change record is logged and the
  /// new root is built, but before the meta page's root pointer moves.
  /// The meta page is X-latched across the whole window, so a concurrent
  /// traversal started here blocks on the root pointer instead of pairing
  /// a fresh memorized NSN with the stale root (the lost-key race the
  /// root-grow regression test pins).
  std::function<void()> during_root_grow;
};

/// Per-tree operation counters. These are views onto "gist.*" counters in
/// the owning registry (Database's, or the process fallback), so the same
/// numbers appear in Database::DumpMetrics(); obs::Counter keeps the old
/// std::atomic surface (load / fetch_add) so existing callers read them
/// unchanged.
struct GistStats {
  explicit GistStats(obs::MetricsRegistry* reg);

  obs::Counter& searches;
  obs::Counter& inserts;
  obs::Counter& deletes;
  obs::Counter& splits;
  obs::Counter& root_grows;
  obs::Counter& rightlink_follows;
  obs::Counter& predicate_waits;
  obs::Counter& rid_lock_waits;
  obs::Counter& gc_removed;
  obs::Counter& nodes_deleted;
  /// Optimistic read path (DESIGN.md section 13): node visits served from
  /// version-validated snapshots, visits that re-copied after a failed
  /// validation, and visits that exhausted their restart budget and fell
  /// back to the latched path.
  obs::Counter& optimistic_visits;
  obs::Counter& read_restarts;
  obs::Counter& read_fallbacks;
};

/// A Generalized Search Tree with the paper's concurrency, isolation and
/// recovery protocols:
///   - search/insert/delete per Figures 3-4 (stack + memorized global NSN,
///     rightlink compensation, no latch coupling, no latches across I/O or
///     lock waits);
///   - hybrid repeatable-read locking: 2PL on data-record RIDs + node-
///     attached predicate locks with replication and percolation;
///   - logical deletes with deferred garbage collection, drain-technique
///     node deletion guarded by signaling locks;
///   - all structure modifications logged as nested top actions with the
///     Table 1 record set.
///
/// Thread-safe: any number of concurrent operations, one transaction per
/// thread at a time.
class Gist {
 public:
  Gist(const GistContext& ctx, const GistExtension* ext, GistOptions opts);
  GISTCR_DISALLOW_COPY_AND_ASSIGN(Gist);

  /// Creates the index: allocates and formats an empty root leaf and
  /// registers it on the meta page. Unlogged; the caller (Database) flushes
  /// before the index is used. Call once per index id.
  Status Create();

  /// Opens an existing index (validates the root pointer).
  Status Open();

  /// SEARCH: all leaf entries consistent with \p query, S-locking result
  /// RIDs and (at repeatable read) attaching the search predicate top-down
  /// to every visited node.
  Status Search(Transaction* txn, Slice query,
                std::vector<SearchResult>* out);

  /// INSERT of (key, rid). The caller must already hold the X lock on the
  /// data record (paper section 6 step 1); Database::Insert does. Blocks on
  /// conflicting search predicates attached to the target leaf.
  Status Insert(Transaction* txn, Slice key, Rid rid);

  /// Unique-index insert (section 8): search phase leaving "= key" probe
  /// predicates, then the regular insert. Returns DuplicateKey (repeatably,
  /// via the S lock on the existing record) if the key exists.
  Status InsertUnique(Transaction* txn, Slice key, Rid rid);

  /// DELETE: logical delete — the leaf entry is only marked (section 7);
  /// garbage collection removes it after the deleter commits. The caller
  /// must hold the X lock on the data record.
  Status Delete(Transaction* txn, Slice key, Rid rid);

  /// Maintenance sweep (section 7.1-7.2): removes committed-deleted leaf
  /// entries, shrinks parent BPs, and retires empty nodes via the drain
  /// technique. Runs in the caller's transaction (all actions are
  /// individually committed NTAs; the surrounding txn carries no undo).
  Status GarbageCollect(Transaction* txn, uint64_t* entries_removed,
                        uint64_t* nodes_deleted);

  /// Quiescent structural validation for tests: BP containment, level
  /// sanity, rightlink acyclicity, RID uniqueness among live leaf entries.
  Status CheckInvariants();

  /// Collects every (key, rid, del_txn) in the tree (tests).
  Status DumpEntries(std::vector<IndexEntry>* out);

  /// Tree height (tests/benchmarks).
  StatusOr<uint32_t> Height();

  PageId root_hint();
  uint32_t index_id() const { return opts_.index_id; }
  const GistExtension* extension() const { return ext_; }
  GistStats& stats() { return stats_; }
  GistTestHooks& test_hooks() { return hooks_; }
  const GistOptions& options() const { return opts_; }

  /// One traversal-stack entry (Figure 3): a node pointer plus the global
  /// counter value memorized when the pointer was read (or, on insert
  /// parent stacks, the node's NSN when visited). Public for GistCursor's
  /// saved positions.
  struct StackEntry {
    PageId page;
    Nsn nsn;
  };

 private:

  // --- shared helpers -------------------------------------------------
  StatusOr<PageId> GetRoot();
  Status FetchLatched(PageId pid, bool exclusive, PageGuard* out);
  bool NodeIsFull(NodeView& node, const IndexEntry& e) const;
  bool LinkProtocol() const {
    return opts_.protocol != ConcurrencyProtocol::kUnsafeNoLink;
  }
  /// Whether a traversal may use the latch-free read path (see
  /// GistOptions::optimistic_reads for the gating rationale).
  bool UseOptimisticReads(bool hybrid_attach) const {
    return opts_.optimistic_reads &&
           opts_.protocol == ConcurrencyProtocol::kLink && !hybrid_attach;
  }

  /// Consistency between a BP (or key) and an attached predicate.
  /// Search/probe attachments carry query-domain bytes; insert attachments
  /// carry the raw inserted key, wrapped into an equality query here.
  bool PredConsistentWithBp(Slice bp, const PredAttachment& a) const {
    if (a.kind == PredKind::kInsert) {
      return ext_->Consistent(bp, ext_->EqQuery(a.pred));
    }
    return ext_->Consistent(bp, a.pred);
  }

  /// Signaling-lock helpers (paper section 7.2).
  Status SignalLock(Transaction* txn, PageId node);
  void SignalUnlock(Transaction* txn, PageId node);

  // --- search ----------------------------------------------------------
  /// Core traversal shared by Search, Delete-locate and unique probes.
  /// \p attach_kind: predicate kind to attach (kSearch for scans at RR,
  /// kUniqueProbe for unique-insert probes); pass kInsert to attach
  /// nothing. \p lock_rids: S-lock result RIDs (2PL).
  Status SearchInternal(Transaction* txn, Slice query, PredKind attach_kind,
                        bool attach, bool lock_rids, uint64_t op_id,
                        std::vector<SearchResult>* out);

  /// Processes one popped stack entry per Figure 3: split compensation,
  /// child pushes with signaling locks (internal) or qualifying-entry
  /// collection with RID locks and predicate fairness (leaf). Shared by
  /// SearchInternal and GistCursor. \p tree may be null (no coarse latch
  /// re-acquisition around lock waits).
  Status ProcessStackEntry(Transaction* txn, PageId page, Nsn memorized,
                           Slice query, PredKind attach_kind,
                           bool hybrid_attach, bool lock_rids,
                           uint64_t op_id,
                           std::vector<StackEntry>* stack,
                           std::unordered_set<uint64_t>* seen,
                           std::vector<SearchResult>* out,
                           internal::TreeLatch* tree);

  /// Latch-free variant of ProcessStackEntry (DESIGN.md section 13): pins
  /// the node, copies it into a local snapshot, validates the frame's
  /// version word, and operates on the copy. Every side effect (child
  /// push, rightlink push, emitted result) is individually re-validated
  /// against the version before it is committed; an invalidated attempt
  /// re-copies. After a bounded number of failed attempts it sets
  /// \p *fallback and returns OK with the node unprocessed — the caller
  /// re-runs it through the latched ProcessStackEntry (guaranteed
  /// progress). Only called when UseOptimisticReads() holds, so there is
  /// no predicate attach and no coarse tree latch to manage.
  Status ProcessStackEntryOptimistic(Transaction* txn, PageId page,
                                     Nsn memorized, Slice query,
                                     bool lock_rids,
                                     std::vector<StackEntry>* stack,
                                     std::unordered_set<uint64_t>* seen,
                                     std::vector<SearchResult>* out,
                                     bool* fallback);

  /// Snapshot-read traversal (DESIGN.md section 14): serves a read-only
  /// snapshot transaction from the versioned leaf store. Makes ZERO lock
  /// manager calls — no RID S-locks (visibility replaces 2PL), no
  /// predicate attaches (the snapshot never conflicts with later writers),
  /// and no signaling locks (node retirement is deferred wholesale while
  /// any snapshot is active; see MvccManager::CanRetireNodes). Latches and
  /// version-validated optimistic reads remain fair game — only the lock
  /// manager is off-limits, which the zero-lock acceptance test asserts
  /// via the lock.acquires counter and tools/gistcr_lint.py enforces
  /// statically for predicate attaches.
  Status SearchSnapshot(Transaction* txn, Slice query,
                        std::vector<SearchResult>* out);

  /// One node visit of the snapshot traversal, optimistic flavor: copy,
  /// validate, push children / emit Visible() leaf entries from the copy.
  /// Sets \p *fallback after the restart budget is exhausted; the caller
  /// re-runs the visit through ProcessStackEntrySnapshotLatched.
  Status ProcessStackEntrySnapshot(Transaction* txn, PageId page,
                                   Nsn memorized, Slice query, Lsn snap,
                                   std::vector<StackEntry>* stack,
                                   std::unordered_set<uint64_t>* seen,
                                   std::vector<SearchResult>* out,
                                   bool* fallback);

  /// Latched flavor of the snapshot visit (optimistic disabled or budget
  /// exhausted): S-latches the node — still zero lock-manager calls.
  Status ProcessStackEntrySnapshotLatched(Transaction* txn, PageId page,
                                          Nsn memorized, Slice query,
                                          Lsn snap,
                                          std::vector<StackEntry>* stack,
                                          std::unordered_set<uint64_t>* seen,
                                          std::vector<SearchResult>* out);

  friend class GistCursor;

  // --- insert ----------------------------------------------------------
  /// Figure 4 locateLeaf: penalty descent with rightlink compensation;
  /// fills the ancestor stack (bottom = root-most) and returns the leaf
  /// X-latched. Signaling locks are taken on every stacked node and the
  /// leaf; the caller releases stack locks at op end (the leaf lock is
  /// kept to end of transaction, section 7.2).
  Status LocateLeaf(Transaction* txn, Slice key,
                    std::vector<StackEntry>* stack, PageGuard* leaf);

  /// Figure 4 splitNode as one nested top action, splitting ancestors
  /// recursively as needed. \p node stays valid (original page, still
  /// X-latched) on return.
  Status SplitNode(Transaction* txn, PageGuard* node,
                   std::vector<StackEntry>* stack, size_t level_idx);

  /// One split step inside an open NTA (no NtaBegin/End of its own).
  Status SplitNodeInNta(Transaction* txn, PageGuard* node,
                        std::vector<StackEntry>* stack, size_t level_idx);

  /// Root growth (B-link upward split) inside an open NTA.
  Status GrowRoot(Transaction* txn, PageGuard* root);

  /// Figure 4 updateBP: recursive upward latching, top-down application on
  /// unwind, one Parent-Entry-Update per level, predicate percolation.
  Status UpdateBp(Transaction* txn, PageGuard* node, const std::string& bp,
                  std::vector<StackEntry>* stack, size_t level_idx);

  /// X-latches the parent of \p child using stack[idx], chasing the parent
  /// rightlink chain if the parent split since it was visited; falls back
  /// to an exhaustive descent when the root grew.
  Status LatchParentForChild(Transaction* txn, std::vector<StackEntry>* stack,
                             size_t idx, PageId child, PageGuard* out);
  Status FindParentExhaustive(PageId child, PageGuard* out);

  /// Re-locates the leaf holding (key,rid) after latches were released
  /// (post lock wait), guided by the memorized NSN.
  Status ChaseToEntry(Transaction* txn, PageId start, Nsn memorized,
                      Slice key, uint64_t value, PageGuard* out, int* slot);

  /// Opportunistic leaf GC (committed-deleted entries) to make room before
  /// splitting. Leaf is X-latched.
  Status LeafGc(Transaction* txn, PageGuard* leaf, uint64_t* removed);

  Status InsertCore(Transaction* txn, Slice key, Rid rid, uint64_t op_id,
                    internal::TreeLatch* tree);

  /// Figure 4 rightlink-chain penalty chase: \p g holds a latched node
  /// whose NSN exceeds \p delimiter; on return \p g holds the chain node
  /// with the lowest insert penalty for \p key (latched in \p exclusive
  /// mode). Signaling locks of rejected chain nodes are released; the
  /// chosen node's is held.
  Status ChaseForPenalty(Transaction* txn, PageGuard* g, Nsn delimiter,
                         Slice key, bool exclusive);

  // --- maintenance -----------------------------------------------------
  Status GcRecurse(Transaction* txn, PageId node, uint64_t* removed,
                   uint64_t* deleted_nodes);
  Status TryDeleteChild(Transaction* txn, PageGuard* parent, PageId child,
                        bool* deleted);
  Status ShrinkChildBp(Transaction* txn, PageGuard* parent, PageGuard* child);

  // --- invariant checking ----------------------------------------------
  Status CheckNode(PageId pid, Slice parent_pred, uint32_t expected_level,
                   bool has_expected_level,
                   std::unordered_set<uint64_t>* rids,
                   std::unordered_set<PageId>* visited);

  GistContext ctx_;
  const GistExtension* ext_;
  GistOptions opts_;
  GistStats stats_;
  obs::Histogram* latch_wait_ns_;  ///< Per-acquisition latch wait time.
  GistTestHooks hooks_;

  /// kCoarse baseline: tree-wide latch.
  SharedMutex tree_latch_{GISTCR_LOCK_RANK(kTreeLatch, "gist.tree_latch")};
  /// One GarbageCollect sweep at a time (its rightlink-owner analysis
  /// assumes it is the only deleter).
  Mutex gc_mu_{GISTCR_LOCK_RANK(kGistGc, "gist.gc.mu")};
};

}  // namespace gistcr

#endif  // GISTCR_GIST_GIST_H_
