#include "gist/gist.h"

#include <algorithm>
#include <thread>

#include "db/meta_page.h"
#include "gist/tree_latch.h"
#include "obs/op_context.h"
#include "obs/trace.h"
#include "storage/fault_injector.h"

namespace gistcr {

using internal::TreeLatch;

namespace {
/// Validation failures tolerated per node visit before the optimistic
/// reader gives up and re-runs the visit through the latched path. Bounds
/// the restart work a write-hot node can inflict on readers (DESIGN.md
/// section 13) and guarantees progress under sustained invalidation.
constexpr int kOptimisticMaxAttempts = 8;
}  // namespace

GistStats::GistStats(obs::MetricsRegistry* reg)
    : searches(*reg->GetCounter("gist.searches")),
      inserts(*reg->GetCounter("gist.inserts")),
      deletes(*reg->GetCounter("gist.deletes")),
      splits(*reg->GetCounter("gist.splits")),
      root_grows(*reg->GetCounter("gist.root_grows")),
      rightlink_follows(*reg->GetCounter("gist.rightlink_follows")),
      predicate_waits(*reg->GetCounter("gist.predicate_waits")),
      rid_lock_waits(*reg->GetCounter("gist.rid_lock_waits")),
      gc_removed(*reg->GetCounter("gist.gc_removed")),
      nodes_deleted(*reg->GetCounter("gist.nodes_deleted")),
      optimistic_visits(*reg->GetCounter("gist.read.optimistic_visits")),
      read_restarts(*reg->GetCounter("gist.read.restarts")),
      read_fallbacks(*reg->GetCounter("gist.read.fallbacks")) {}

Gist::Gist(const GistContext& ctx, const GistExtension* ext, GistOptions opts)
    : ctx_(ctx),
      ext_(ext),
      opts_(opts),
      stats_(obs::MetricsRegistry::OrFallback(ctx.metrics)),
      latch_wait_ns_(obs::MetricsRegistry::OrFallback(ctx.metrics)
                         ->GetHistogram("gist.latch_wait_ns")) {
  GISTCR_CHECK(ctx_.pool != nullptr && ctx_.txns != nullptr &&
               ctx_.locks != nullptr && ctx_.preds != nullptr &&
               ctx_.alloc != nullptr && ctx_.nsn != nullptr);
}

Status Gist::Create() {
  // Index creation is unlogged: it runs at database-creation time and the
  // caller flushes before the first logged operation (see Database).
  // Allocate the root without logging by reserving through a throwaway
  // transaction would log; instead use the allocator's bitmap directly via
  // a bootstrap transaction whose records are harmless to redo.
  Transaction* boot = ctx_.txns->Begin(IsolationLevel::kReadCommitted);
  auto pid_or = ctx_.alloc->Allocate(boot);
  if (!pid_or.ok()) {
    (void)ctx_.txns->Abort(boot);
    return pid_or.status();
  }
  const PageId root = pid_or.value();
  {
    auto frame_or = ctx_.pool->NewPage(root);
    GISTCR_RETURN_IF_ERROR(frame_or.status());
    PageGuard guard(ctx_.pool, frame_or.value());
    guard.WLatch();
    NodeView node(guard.view().data());
    node.Init(root, /*level=*/0);
    guard.view().set_page_lsn(boot->last_lsn());
    guard.frame()->MarkDirty(boot->last_lsn());
  }
  {
    auto frame_or = ctx_.pool->Fetch(MetaView::kMetaPageId);
    GISTCR_RETURN_IF_ERROR(frame_or.status());
    PageGuard guard(ctx_.pool, frame_or.value());
    guard.WLatch();
    MetaView meta(guard.view().data());
    GISTCR_CHECK(meta.GetRoot(opts_.index_id) == kInvalidPageId);
    meta.SetRoot(opts_.index_id, root);
    guard.view().set_page_lsn(boot->last_lsn());
    guard.frame()->MarkDirty(boot->last_lsn());
  }
  return ctx_.txns->Commit(boot);
}

Status Gist::Open() {
  auto root_or = GetRoot();
  GISTCR_RETURN_IF_ERROR(root_or.status());
  if (root_or.value() == kInvalidPageId) {
    return Status::NotFound("index " + std::to_string(opts_.index_id));
  }
  return Status::OK();
}

StatusOr<PageId> Gist::GetRoot() {
  auto frame_or = ctx_.pool->Fetch(MetaView::kMetaPageId);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard guard(ctx_.pool, frame_or.value());
  if (UseOptimisticReads(/*hybrid_attach=*/false)) {
    // The meta page is the hottest shared latch in the tree (every
    // operation starts here); read the root pointer from a version-
    // validated snapshot instead. Root caching is NOT safe — a stale
    // ex-root could be retired and its page reallocated — but the
    // validated snapshot carries no such hazard: it is exactly the
    // latched read, minus the latch.
    alignas(8) char snap[kPageSize];
    OptimisticReadScope optimistic;
    for (int attempt = 0; attempt < kOptimisticMaxAttempts; attempt++) {
      uint64_t version = 0;
      if (!guard.frame()->SnapshotPage(snap, &version,
                                       &MetaView::SnapshotBounds)) {
        stats_.read_restarts.Add(1);
        obs::BumpRestarts();
        continue;
      }
      MetaView meta(PageView(snap).data());
      if (!meta.valid()) return Status::Corruption("bad meta page");
      return meta.GetRoot(opts_.index_id);
    }
    stats_.read_fallbacks.Add(1);
  }
  guard.RLatch();
  MetaView meta(guard.view().data());
  if (!meta.valid()) return Status::Corruption("bad meta page");
  return meta.GetRoot(opts_.index_id);
}

PageId Gist::root_hint() {
  auto r = GetRoot();
  return r.ok() ? r.value() : kInvalidPageId;
}

Status Gist::FetchLatched(PageId pid, bool exclusive, PageGuard* out) {
  auto frame_or = ctx_.pool->Fetch(pid);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  *out = PageGuard(ctx_.pool, frame_or.value());
  // Every acquisition is recorded (uncontended ones land in the low
  // buckets), so the histogram doubles as a latch-traffic count and the
  // tail quantifies contention.
  const uint64_t t0 = obs::NowNanos();
  if (exclusive) {
    out->WLatch();
  } else {
    out->RLatch();
  }
  const uint64_t waited = obs::NowNanos() - t0;
  latch_wait_ns_->Record(waited);
  obs::AddStage(obs::Stage::kLatch, waited);
  return Status::OK();
}

bool Gist::NodeIsFull(NodeView& node, const IndexEntry& e) const {
  if (opts_.max_entries != 0 && node.count() >= opts_.max_entries) {
    return true;
  }
  return !node.HasSpaceFor(e);
}

Status Gist::SignalLock(Transaction* txn, PageId node) {
  return ctx_.locks->Lock(txn->id(), LockName{LockSpace::kNode, node},
                          LockMode::kShared, /*wait=*/true);
}

void Gist::SignalUnlock(Transaction* txn, PageId node) {
  ctx_.locks->Unlock(txn->id(), LockName{LockSpace::kNode, node});
}

Status Gist::Search(Transaction* txn, Slice query,
                    std::vector<SearchResult>* out) {
  GISTCR_TRACE_SCOPE("gist.search");
  obs::TreeScope tree_scope;
  stats_.searches.Add(1);
  if (txn->is_snapshot()) {
    return SearchSnapshot(txn, query, out);
  }
  const bool attach =
      txn->isolation() == IsolationLevel::kRepeatableRead;
  return SearchInternal(txn, query, PredKind::kSearch, attach,
                        /*lock_rids=*/true, txn->NextOpId(), out);
}

Status Gist::SearchSnapshot(Transaction* txn, Slice query,
                            std::vector<SearchResult>* out) {
  GISTCR_CHECK(ctx_.mvcc != nullptr);  // Begin downgrades otherwise
  ctx_.mvcc->CountSnapshotRead();
  const Lsn snap = txn->snapshot_lsn();

  // The coarse baseline's tree latch is a latch, not a lock: snapshot
  // readers take it shared like any other search under that protocol.
  TreeLatch tree(&tree_latch_, /*exclusive=*/false,
                 opts_.protocol == ConcurrencyProtocol::kCoarse);

  // Same memorize-then-read ordering as SearchInternal (Figure 3 applied
  // to the root pointer).
  const Nsn root_mem = ctx_.nsn->Current();
  auto root_or = GetRoot();
  GISTCR_RETURN_IF_ERROR(root_or.status());
  const PageId root = root_or.value();
  if (root == kInvalidPageId) return Status::NotFound("index has no root");

  // No signaling lock on the root (or on any stacked pointer below): the
  // registered snapshot itself is what keeps every stacked pointer valid —
  // TryDeleteChild refuses to retire nodes while MvccManager reports an
  // active snapshot, and the snapshot was registered at Begin, strictly
  // before this traversal read any pointer.
  std::vector<StackEntry> stack;
  stack.push_back({root, root_mem});
  if (hooks_.after_root_push) hooks_.after_root_push();

  std::unordered_set<uint64_t> seen;
  const bool optimistic = UseOptimisticReads(/*hybrid_attach=*/false);
  while (!stack.empty()) {
    const StackEntry e = stack.back();
    stack.pop_back();
    if (hooks_.before_visit_node) hooks_.before_visit_node(e.page);
    bool fallback = !optimistic;
    if (optimistic) {
      GISTCR_RETURN_IF_ERROR(ProcessStackEntrySnapshot(
          txn, e.page, e.nsn, query, snap, &stack, &seen, out, &fallback));
    }
    if (fallback) {
      GISTCR_RETURN_IF_ERROR(ProcessStackEntrySnapshotLatched(
          txn, e.page, e.nsn, query, snap, &stack, &seen, out));
    }
  }
  return Status::OK();
}

Status Gist::ProcessStackEntrySnapshot(Transaction* txn, PageId page,
                                       Nsn memorized, Slice query, Lsn snap,
                                       std::vector<StackEntry>* stack,
                                       std::unordered_set<uint64_t>* seen,
                                       std::vector<SearchResult>* out,
                                       bool* fallback) {
  (void)txn;
  *fallback = false;
  auto frame_or = ctx_.pool->Fetch(page);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard g(ctx_.pool, frame_or.value());  // pin only — never latched
  stats_.optimistic_visits.Add(1);

  // Unlike the locking traversal's optimistic visit, pushes need no
  // post-push revalidation here: a validated copy proves the parent held
  // the pointer at copy time, and the active snapshot blocks retirement
  // from then on. Dedupe within the visit so attempt restarts do not push
  // a child twice.
  std::unordered_set<PageId> pushed;
  alignas(8) char snap_buf[kPageSize];
  OptimisticReadScope optimistic;

  for (int attempt = 0; attempt < kOptimisticMaxAttempts; attempt++) {
    if (attempt != 0) {
      stats_.read_restarts.Add(1);
      obs::BumpRestarts();
      std::this_thread::yield();
    }
    const Nsn cur = ctx_.nsn->Current();  // memorize before the copy
    uint64_t version = 0;
    if (!g.frame()->SnapshotPage(snap_buf, &version,
                                 &NodeView::SnapshotBounds)) {
      continue;
    }
    NodeView node(PageView(snap_buf).data());

    // Split detection (Figure 2) against the consistent copy.
    if (node.nsn() > memorized && node.rightlink() != kInvalidPageId &&
        pushed.count(node.rightlink()) == 0) {
      bool already = false;
      for (const auto& s : *stack) {
        if (s.page == node.rightlink() && s.nsn == memorized) already = true;
      }
      if (!already) {
        stack->push_back({node.rightlink(), memorized});
        pushed.insert(node.rightlink());
        stats_.rightlink_follows.Add(1);
      }
    }

    if (!node.is_leaf()) {
      const uint16_t n = node.count();
      for (uint16_t i = 0; i < n; i++) {
        if (!ext_->Consistent(node.entry_key(i), query)) continue;
        const PageId child = static_cast<PageId>(node.entry_value(i));
        if (pushed.count(child) != 0) continue;
        stack->push_back({child, cur});
        pushed.insert(child);
      }
      g.Drop();
      return Status::OK();
    }

    // Leaf: emit entries the snapshot can see. Visible() consults the
    // *live* version store while the copy is frozen at validation time, so
    // the verdicts are staged and the frame version re-checked before any
    // of them publish. Store mutations that matter pair with a page write
    // on this leaf (inserts, delete marks, abort undo retracting a record
    // after its page undo), so an unchanged version proves the store the
    // verdicts were computed against matches the copy; the unpaired
    // mutations (commit stamping, pruning) are verdict-preserving for any
    // registered snapshot.
    GISTCR_CRASHPOINT("search.mvcc_visibility");
    const uint16_t n = node.count();
    std::vector<std::pair<uint64_t, SearchResult>> emit;
    for (uint16_t i = 0; i < n; i++) {
      if (!ext_->Consistent(node.entry_key(i), query)) continue;
      const uint64_t rid = node.entry_value(i);
      if (seen->count(rid) != 0) continue;
      if (!ctx_.mvcc->Visible(rid, node.entry_del_txn(i), snap)) continue;
      emit.emplace_back(
          rid, SearchResult{node.entry_key(i).ToString(), Rid::Unpack(rid)});
    }
    if (g.frame()->version() != version) continue;
    for (auto& e2 : emit) {
      seen->insert(e2.first);
      out->push_back(std::move(e2.second));
    }
    g.Drop();
    return Status::OK();
  }

  stats_.read_fallbacks.Add(1);
  *fallback = true;
  g.Drop();
  return Status::OK();
}

Status Gist::ProcessStackEntrySnapshotLatched(
    Transaction* txn, PageId page, Nsn memorized, Slice query, Lsn snap,
    std::vector<StackEntry>* stack, std::unordered_set<uint64_t>* seen,
    std::vector<SearchResult>* out) {
  (void)txn;
  PageGuard g;
  GISTCR_RETURN_IF_ERROR(FetchLatched(page, /*exclusive=*/false, &g));
  NodeView node(g.view().data());

  if (LinkProtocol() && node.nsn() > memorized &&
      node.rightlink() != kInvalidPageId) {
    bool already = false;
    for (const auto& s : *stack) {
      if (s.page == node.rightlink() && s.nsn == memorized) already = true;
    }
    if (!already) {
      stack->push_back({node.rightlink(), memorized});
      stats_.rightlink_follows.Add(1);
      obs::BumpRestarts();
    }
  }

  if (!node.is_leaf()) {
    const Nsn cur = ctx_.nsn->Current();  // memorize before reading ptrs
    const uint16_t n = node.count();
    for (uint16_t i = 0; i < n; i++) {
      if (!ext_->Consistent(node.entry_key(i), query)) continue;
      stack->push_back({static_cast<PageId>(node.entry_value(i)), cur});
    }
    return Status::OK();
  }

  GISTCR_CRASHPOINT("search.mvcc_visibility");
  const uint16_t n = node.count();
  for (uint16_t i = 0; i < n; i++) {
    if (!ext_->Consistent(node.entry_key(i), query)) continue;
    const uint64_t rid = node.entry_value(i);
    if (seen->count(rid) != 0) continue;
    if (!ctx_.mvcc->Visible(rid, node.entry_del_txn(i), snap)) continue;
    seen->insert(rid);
    out->push_back({node.entry_key(i).ToString(), Rid::Unpack(rid)});
  }
  return Status::OK();
}

Status Gist::SearchInternal(Transaction* txn, Slice query,
                            PredKind attach_kind, bool attach, bool lock_rids,
                            uint64_t op_id, std::vector<SearchResult>* out) {
  // Pure predicate locking (section 4.2, ablation mode): one tree-global
  // check-then-register step before the traversal starts.
  if (attach && opts_.pred_mode == PredicateMode::kGlobal) {
    for (;;) {
      auto conflicts = ctx_.preds->FindConflicts(
          PredicateManager::kGlobalTable, txn->id(),
          [&](const PredAttachment& a) {
            // Scans conflict with registered insert/delete keys.
            return a.kind == PredKind::kInsert &&
                   ext_->Consistent(a.pred, query);
          });
      if (conflicts.empty()) {
        ctx_.preds->Attach(PredicateManager::kGlobalTable, txn->id(), op_id,
                           attach_kind, query);
        break;
      }
      stats_.predicate_waits.Add(1);
      for (TxnId owner : conflicts) {
        GISTCR_RETURN_IF_ERROR(ctx_.locks->WaitForTxn(txn->id(), owner));
      }
    }
  }
  const bool hybrid_attach =
      attach && opts_.pred_mode == PredicateMode::kHybrid;

  TreeLatch tree(&tree_latch_, /*exclusive=*/false,
                 opts_.protocol == ConcurrencyProtocol::kCoarse);

  // Memorize the counter BEFORE reading the root pointer: a root grow in
  // the window between a read-then-memorize pair would assign the old
  // root's new sibling an NSN below the memorized value, making the split
  // undetectable (Figure 3's memorize-then-read order applies to the root
  // pointer like any other). An older memorized value is always safe — at
  // worst it costs an extra rightlink check.
  const Nsn root_mem = ctx_.nsn->Current();
  auto root_or = GetRoot();
  GISTCR_RETURN_IF_ERROR(root_or.status());
  const PageId root = root_or.value();
  if (root == kInvalidPageId) return Status::NotFound("index has no root");

  std::vector<StackEntry> stack;
  GISTCR_RETURN_IF_ERROR(SignalLock(txn, root));
  stack.push_back({root, root_mem});
  if (hooks_.after_root_push) hooks_.after_root_push();

  std::unordered_set<uint64_t> seen;

  const bool optimistic = UseOptimisticReads(hybrid_attach);
  while (!stack.empty()) {
    const StackEntry e = stack.back();
    stack.pop_back();
    if (hooks_.before_visit_node) hooks_.before_visit_node(e.page);
    bool fallback = !optimistic;
    if (optimistic) {
      GISTCR_RETURN_IF_ERROR(ProcessStackEntryOptimistic(
          txn, e.page, e.nsn, query, lock_rids, &stack, &seen, out,
          &fallback));
    }
    if (fallback) {
      GISTCR_RETURN_IF_ERROR(ProcessStackEntry(
          txn, e.page, e.nsn, query, attach_kind, hybrid_attach, lock_rids,
          op_id, &stack, &seen, out, &tree));
    }
  }
  return Status::OK();
}


Status Gist::ProcessStackEntry(Transaction* txn, PageId page, Nsn memorized,
                               Slice query, PredKind attach_kind,
                               bool hybrid_attach, bool lock_rids,
                               uint64_t op_id,
                               std::vector<StackEntry>* stack,
                               std::unordered_set<uint64_t>* seen,
                               std::vector<SearchResult>* out,
                               internal::TreeLatch* tree) {
  PageGuard g;
  GISTCR_RETURN_IF_ERROR(FetchLatched(page, /*exclusive=*/false, &g));

  for (;;) {
    NodeView node(g.view().data());
    // Split detection (Figure 2): the node split after the pointer was
    // memorized; its right sibling(s) must also be examined, with the
    // same memorized counter value.
    if (LinkProtocol() && node.nsn() > memorized &&
        node.rightlink() != kInvalidPageId) {
      bool already = false;
      for (const auto& s : *stack) {
        if (s.page == node.rightlink() && s.nsn == memorized) already = true;
      }
      if (!already) {
        GISTCR_RETURN_IF_ERROR(SignalLock(txn, node.rightlink()));
        stack->push_back({node.rightlink(), memorized});
        stats_.rightlink_follows.Add(1);
        obs::BumpRestarts();
      }
    }

    if (!node.is_leaf()) {
      const Nsn cur = ctx_.nsn->Current();  // memorize before reading ptrs
      const uint16_t n = node.count();
      for (uint16_t i = 0; i < n; i++) {
        if (!ext_->Consistent(node.entry_key(i), query)) continue;
        const PageId child = static_cast<PageId>(node.entry_value(i));
        GISTCR_RETURN_IF_ERROR(SignalLock(txn, child));
        stack->push_back({child, cur});
      }
      if (hybrid_attach) {
        ctx_.preds->Attach(page, txn->id(), op_id, attach_kind, query);
      }
      break;
    }

    // Leaf: collect qualifying entries under the hybrid protocol.
    bool rescan = false;
    const uint16_t n = node.count();
    for (uint16_t i = 0; i < n && !rescan; i++) {
      if (!ext_->Consistent(node.entry_key(i), query)) continue;
      const TxnId del_txn = node.entry_del_txn(i);
      if (del_txn == txn->id()) continue;  // own logical delete
      const uint64_t rid = node.entry_value(i);
      if (seen->count(rid) != 0) continue;
      if (lock_rids) {
        Status st = ctx_.locks->Lock(txn->id(),
                                     LockName{LockSpace::kRecord, rid},
                                     LockMode::kShared, /*wait=*/false);
        if (st.IsBusy()) {
          // Blocking with a latch held could deadlock against the lock
          // owner; release the latch, wait, re-position (section 5).
          stats_.rid_lock_waits.Add(1);
          const Nsn mem = node.nsn();
          g.Unlatch();
          if (tree != nullptr) tree->Release();
          st = ctx_.locks->Lock(txn->id(),
                                LockName{LockSpace::kRecord, rid},
                                LockMode::kShared, /*wait=*/true);
          GISTCR_RETURN_IF_ERROR(st);
          if (tree != nullptr) tree->Acquire();
          g.RLatch();
          NodeView renode(g.view().data());
          if (LinkProtocol() && renode.nsn() > mem &&
              renode.rightlink() != kInvalidPageId) {
            GISTCR_RETURN_IF_ERROR(SignalLock(txn, renode.rightlink()));
            stack->push_back({renode.rightlink(), mem});
            stats_.rightlink_follows.Add(1);
            obs::BumpRestarts();
          }
          rescan = true;  // restart the slot loop; `seen` prevents dupes
          break;
        }
        GISTCR_RETURN_IF_ERROR(st);
      }
      if (node.entry_del_txn(i) != kInvalidTxnId) {
        // Still marked after we obtained the S lock: the deleter
        // committed; the entry is logically gone.
        continue;
      }
      seen->insert(rid);
      out->push_back({node.entry_key(i).ToString(), Rid::Unpack(rid)});
    }
    if (rescan) continue;

    if (hybrid_attach) {
      // Attach the search predicate; FIFO fairness (section 10.3): block
      // behind conflicting insert predicates attached ahead of us.
      auto conflicts = ctx_.preds->AttachAndFindConflicts(
          page, txn->id(), op_id, attach_kind, query,
          [&](const PredAttachment& a) {
            return a.kind == PredKind::kInsert &&
                   ext_->Consistent(a.pred, query);
          });
      if (!conflicts.empty()) {
        stats_.predicate_waits.Add(1);
        const Nsn mem = node.nsn();
        g.Unlatch();
        if (tree != nullptr) tree->Release();
        for (TxnId owner : conflicts) {
          GISTCR_RETURN_IF_ERROR(ctx_.locks->WaitForTxn(txn->id(), owner));
        }
        if (tree != nullptr) tree->Acquire();
        g.RLatch();
        NodeView renode(g.view().data());
        if (LinkProtocol() && renode.nsn() > mem &&
            renode.rightlink() != kInvalidPageId) {
          GISTCR_RETURN_IF_ERROR(SignalLock(txn, renode.rightlink()));
          stack->push_back({renode.rightlink(), mem});
          stats_.rightlink_follows.Add(1);
          obs::BumpRestarts();
        }
        continue;  // rescan the leaf (the insert's entry is now visible)
      }
    }
    break;
  }

  g.Drop();
  // Visited: the signaling lock protecting this stacked pointer can go
  // (section 7.2).
  SignalUnlock(txn, page);
  return Status::OK();
}

Status Gist::ProcessStackEntryOptimistic(Transaction* txn, PageId page,
                                         Nsn memorized, Slice query,
                                         bool lock_rids,
                                         std::vector<StackEntry>* stack,
                                         std::unordered_set<uint64_t>* seen,
                                         std::vector<SearchResult>* out,
                                         bool* fallback) {
  *fallback = false;
  auto frame_or = ctx_.pool->Fetch(page);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard g(ctx_.pool, frame_or.value());  // pin only — never latched
  stats_.optimistic_visits.Add(1);

  // Pushes committed by an earlier attempt of THIS visit. Each push was
  // individually validated (the parent still held the pointer when its
  // signaling lock landed), so an invalidated attempt leaves them on the
  // stack; this set keeps the retry from pushing duplicates.
  std::unordered_set<PageId> pushed;
  alignas(8) char snap[kPageSize];
  OptimisticReadScope optimistic;

  for (int attempt = 0; attempt < kOptimisticMaxAttempts; attempt++) {
    if (attempt != 0) {
      stats_.read_restarts.Add(1);
      obs::BumpRestarts();
      GISTCR_CRASHPOINT("search.optimistic_restart");
      // A writer may be holding the X latch for a while (e.g. I/O under
      // latch on the insert path); don't burn the restart budget spinning.
      std::this_thread::yield();
    }
    // Memorize the counter BEFORE the copy: a child that splits after the
    // copy then carries an NSN above it (Figure 3 ordering, with the
    // snapshot standing in for the latched pointer read).
    const Nsn cur = ctx_.nsn->Current();
    uint64_t version = 0;
    if (!g.frame()->SnapshotPage(snap, &version, &NodeView::SnapshotBounds)) {
      continue;
    }
    NodeView node(PageView(snap).data());

    // Split detection (Figure 2) against the consistent copy.
    if (node.nsn() > memorized && node.rightlink() != kInvalidPageId &&
        pushed.count(node.rightlink()) == 0) {
      bool already = false;
      for (const auto& s : *stack) {
        if (s.page == node.rightlink() && s.nsn == memorized) already = true;
      }
      if (!already) {
        // Blocking on a LOCK is fine here (we hold no latch, just like the
        // latched path after it unlatches to wait); only latches are
        // forbidden inside the optimistic section.
        GISTCR_RETURN_IF_ERROR(SignalLock(txn, node.rightlink()));
        if (g.frame()->version() != version) {
          // Node changed while the lock was acquired: the pointer may be
          // stale (the sibling could since have been retired). Unwind.
          SignalUnlock(txn, node.rightlink());
          continue;
        }
        stack->push_back({node.rightlink(), memorized});
        pushed.insert(node.rightlink());
        stats_.rightlink_follows.Add(1);
      }
    }

    if (!node.is_leaf()) {
      bool invalidated = false;
      const uint16_t n = node.count();
      for (uint16_t i = 0; i < n; i++) {
        if (!ext_->Consistent(node.entry_key(i), query)) continue;
        const PageId child = static_cast<PageId>(node.entry_value(i));
        if (pushed.count(child) != 0) continue;
        GISTCR_RETURN_IF_ERROR(SignalLock(txn, child));
        if (g.frame()->version() != version) {
          SignalUnlock(txn, child);
          invalidated = true;
          break;
        }
        // Version unchanged after the lock: the parent entry still points
        // at child, so child was not retired before our signaling lock —
        // the stacked pointer is deletion-protected from here (section
        // 7.2), exactly the guarantee the latched read derives from its
        // S latch.
        stack->push_back({child, cur});
        pushed.insert(child);
      }
      if (invalidated) continue;
      g.Drop();
      SignalUnlock(txn, page);
      return Status::OK();
    }

    // Leaf: emit qualifying entries. `seen` makes attempt restarts exact —
    // entries committed by a previous attempt are skipped, entries the
    // invalidation interrupted are re-scanned.
    bool invalidated = false;
    const uint16_t n = node.count();
    for (uint16_t i = 0; i < n; i++) {
      if (!ext_->Consistent(node.entry_key(i), query)) continue;
      if (node.entry_del_txn(i) == txn->id()) continue;  // own logical delete
      const uint64_t rid = node.entry_value(i);
      if (seen->count(rid) != 0) continue;
      if (lock_rids) {
        Status st = ctx_.locks->Lock(txn->id(),
                                     LockName{LockSpace::kRecord, rid},
                                     LockMode::kShared, /*wait=*/false);
        if (st.IsBusy()) {
          // Block without any latch held (the latched path must first
          // unlatch to get here — we are already there), then re-copy:
          // the owner's commit may have changed the entry's del_txn.
          stats_.rid_lock_waits.Add(1);
          st = ctx_.locks->Lock(txn->id(), LockName{LockSpace::kRecord, rid},
                                LockMode::kShared, /*wait=*/true);
          GISTCR_RETURN_IF_ERROR(st);
          invalidated = true;
          break;
        }
        GISTCR_RETURN_IF_ERROR(st);
        if (g.frame()->version() != version) {
          // The S lock is held (2PL keeps it), but the snapshot's del_txn
          // can no longer be trusted; re-copy and re-judge this entry.
          invalidated = true;
          break;
        }
      }
      if (node.entry_del_txn(i) != kInvalidTxnId) {
        // Marked in a copy validated while we hold the S lock: the
        // deleter committed; the entry is logically gone.
        continue;
      }
      seen->insert(rid);
      out->push_back({node.entry_key(i).ToString(), Rid::Unpack(rid)});
    }
    if (invalidated) continue;
    g.Drop();
    SignalUnlock(txn, page);
    return Status::OK();
  }

  // Restart budget exhausted: hand the node to the latched path. Children
  // already pushed stay pushed — the latched visit may push them again,
  // which costs a duplicate (signal-lock-balanced) visit but no duplicate
  // results (`seen`).
  stats_.read_fallbacks.Add(1);
  *fallback = true;
  g.Drop();
  return Status::OK();
}

}  // namespace gistcr\n