#include "gist/gist.h"
#include "gist/tree_latch.h"
#include "obs/op_context.h"
#include "obs/trace.h"
#include "storage/fault_injector.h"

namespace gistcr {

using internal::TreeLatch;

// DELETE (paper section 7): locate the (key, rid) leaf entry — a search
// with an equality predicate — and mark it logically deleted. The entry
// stays physically present (and the parent BPs untouched) so concurrent
// Degree-3 searches still reach it and block on the record's X lock;
// garbage collection removes it after this transaction terminates.
Status Gist::Delete(Transaction* txn, Slice key, Rid rid) {
  GISTCR_TRACE_SCOPE("gist.delete");
  obs::TreeScope tree_scope;
  stats_.deletes.Add(1);
  const uint64_t op_id = txn->NextOpId();

  // Two-phase X lock on the data record before touching the tree.
  GISTCR_RETURN_IF_ERROR(
      ctx_.locks->Lock(txn->id(), LockName{LockSpace::kRecord, rid.Pack()},
                       LockMode::kExclusive, /*wait=*/true));

  // Pure predicate locking ablation: deletes register their key too
  // (section 4.2) and wait out conflicting scans up front.
  if (opts_.pred_mode == PredicateMode::kGlobal) {
    for (;;) {
      auto conflicts = ctx_.preds->FindConflicts(
          PredicateManager::kGlobalTable, txn->id(),
          [&](const PredAttachment& a) {
            return a.kind != PredKind::kInsert &&
                   ext_->Consistent(key, a.pred);
          });
      if (conflicts.empty()) {
        ctx_.preds->Attach(PredicateManager::kGlobalTable, txn->id(), op_id,
                           PredKind::kInsert, key);
        break;
      }
      stats_.predicate_waits.Add(1);
      for (TxnId owner : conflicts) {
        GISTCR_RETURN_IF_ERROR(ctx_.locks->WaitForTxn(txn->id(), owner));
      }
    }
  }

  TreeLatch tree(&tree_latch_, /*exclusive=*/true,
                 opts_.protocol == ConcurrencyProtocol::kCoarse);

  const std::string eq = ext_->EqQuery(key);
  auto root_or = GetRoot();
  GISTCR_RETURN_IF_ERROR(root_or.status());
  const PageId root = root_or.value();
  if (root == kInvalidPageId) return Status::NotFound("index has no root");

  std::vector<StackEntry> stack;
  GISTCR_RETURN_IF_ERROR(SignalLock(txn, root));
  stack.push_back({root, ctx_.nsn->Current()});

  auto release_stack = [&]() {
    for (const StackEntry& s : stack) SignalUnlock(txn, s.page);
    stack.clear();
  };

  while (!stack.empty()) {
    const StackEntry e = stack.back();
    stack.pop_back();

    PageGuard g;
    GISTCR_RETURN_IF_ERROR(FetchLatched(e.page, /*exclusive=*/false, &g));
    {
      NodeView probe(g.view().data());
      if (probe.is_leaf()) {
        // Need the X latch to mark; re-latch (split compensation below).
        g.Unlatch();
        g.WLatch();
      }
    }
    NodeView node(g.view().data());
    if (LinkProtocol() && node.nsn() > e.nsn &&
        node.rightlink() != kInvalidPageId) {
      GISTCR_RETURN_IF_ERROR(SignalLock(txn, node.rightlink()));
      stack.push_back({node.rightlink(), e.nsn});
      stats_.rightlink_follows.Add(1);
      obs::BumpRestarts();
    }

    if (!node.is_leaf()) {
      const Nsn cur = ctx_.nsn->Current();
      for (uint16_t i = 0; i < node.count(); i++) {
        if (!ext_->Consistent(node.entry_key(i), eq)) continue;
        const PageId child = static_cast<PageId>(node.entry_value(i));
        GISTCR_RETURN_IF_ERROR(SignalLock(txn, child));
        stack.push_back({child, cur});
      }
      g.Drop();
      SignalUnlock(txn, e.page);
      continue;
    }

    const int idx = node.FindByKeyValue(key, rid.Pack());
    if (idx >= 0 && node.entry_del_txn(static_cast<uint16_t>(idx)) ==
                        kInvalidTxnId) {
      // Found live: mark it (Mark-Leaf-Entry, logged in the transaction;
      // undo unmarks, logically if the entry migrated right meanwhile).
      LogRecord rec;
      rec.type = LogRecordType::kMarkLeafEntry;
      EntryOpPayload pl;
      pl.page = e.page;
      pl.nsn = node.nsn();
      pl.entry = node.GetEntry(static_cast<uint16_t>(idx));
      pl.EncodeTo(&rec.payload);
      GISTCR_RETURN_IF_ERROR(ctx_.txns->AppendTxnLog(txn, &rec));
      node.set_entry_del_txn(static_cast<uint16_t>(idx), txn->id());
      g.view().set_page_lsn(rec.lsn);
      g.frame()->MarkDirty(rec.lsn);
      // Version-store shadow of the mark (DESIGN.md section 14): snapshots
      // begun before this delete's commit stamp keep seeing the entry.
      if (ctx_.mvcc != nullptr) ctx_.mvcc->NoteDelete(rid.Pack(), txn->id());
      // Mark applied and logged inside a still-running transaction.
      GISTCR_CRASHPOINT("delete.after_mark");
      g.Drop();
      SignalUnlock(txn, e.page);
      release_stack();
      return Status::OK();
    }
    g.Drop();
    SignalUnlock(txn, e.page);
  }
  return Status::NotFound("key/rid not in index");
}

}  // namespace gistcr
