#ifndef GISTCR_GIST_TREE_LATCH_H_
#define GISTCR_GIST_TREE_LATCH_H_

#include <shared_mutex>

#include "util/macros.h"

namespace gistcr {
namespace internal {

/// RAII for the kCoarse baseline's tree-wide latch; can be dropped and
/// re-acquired around lock waits (blocking while holding it would deadlock
/// undetectably against the lock manager). A no-op when disabled (kLink /
/// kUnsafeNoLink protocols).
class TreeLatch {
 public:
  TreeLatch(std::shared_mutex* m, bool exclusive, bool enabled)
      : m_(m), exclusive_(exclusive), enabled_(enabled) {
    Acquire();
  }
  ~TreeLatch() { Release(); }
  GISTCR_DISALLOW_COPY_AND_ASSIGN(TreeLatch);

  void Acquire() {
    if (!enabled_ || held_) return;
    if (exclusive_) {
      m_->lock();
    } else {
      m_->lock_shared();
    }
    held_ = true;
  }
  void Release() {
    if (!enabled_ || !held_) return;
    if (exclusive_) {
      m_->unlock();
    } else {
      m_->unlock_shared();
    }
    held_ = false;
  }

 private:
  std::shared_mutex* m_;
  bool exclusive_;
  bool enabled_;
  bool held_ = false;
};

}  // namespace internal
}  // namespace gistcr

#endif  // GISTCR_GIST_TREE_LATCH_H_
