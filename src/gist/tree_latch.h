#ifndef GISTCR_GIST_TREE_LATCH_H_
#define GISTCR_GIST_TREE_LATCH_H_

// RAII wrapper over SharedMutex with runtime-conditional acquisition; the
// lock()/unlock() calls below are the wrapper implementation itself.
// gistcr-lint: allow-file(raw-latch-primitive)

#include "common/mutex.h"
#include "common/optimistic.h"
#include "util/macros.h"

namespace gistcr {
namespace internal {

/// RAII for the kCoarse baseline's tree-wide latch; can be dropped and
/// re-acquired around lock waits (blocking while holding it would deadlock
/// undetectably against the lock manager). A no-op when disabled (kLink /
/// kUnsafeNoLink protocols).
///
/// Deliberately outside Clang's thread-safety analysis (DESIGN.md section
/// 10): whether the latch is held is runtime state (enabled_/held_,
/// exclusive vs. shared mode), which the static analysis cannot model —
/// TSan and the held_ flag enforce pairing instead.
class TreeLatch {
 public:
  TreeLatch(SharedMutex* m, bool exclusive, bool enabled)
      : m_(m), exclusive_(exclusive), enabled_(enabled) {
    Acquire();
  }
  ~TreeLatch() { Release(); }
  GISTCR_DISALLOW_COPY_AND_ASSIGN(TreeLatch);

  void Acquire() GISTCR_NO_THREAD_SAFETY_ANALYSIS {
    if (!enabled_ || held_) return;
    // The optimistic read path only runs under kLink, where this latch is
    // disabled — an enabled acquisition inside an optimistic section is a
    // protocol violation (blocking latch wait while latch-free).
    GISTCR_DCHECK(!InOptimisticSection());
    if (exclusive_) {
      m_->lock();
    } else {
      m_->lock_shared();
    }
    held_ = true;
  }
  void Release() GISTCR_NO_THREAD_SAFETY_ANALYSIS {
    if (!enabled_ || !held_) return;
    if (exclusive_) {
      m_->unlock();
    } else {
      m_->unlock_shared();
    }
    held_ = false;
  }

 private:
  SharedMutex* m_;
  bool exclusive_;
  bool enabled_;
  bool held_ = false;
};

}  // namespace internal
}  // namespace gistcr

#endif  // GISTCR_GIST_TREE_LATCH_H_
