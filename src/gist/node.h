#ifndef GISTCR_GIST_NODE_H_
#define GISTCR_GIST_NODE_H_

#include <string>
#include <vector>

#include "common/entry.h"
#include "common/types.h"
#include "storage/page.h"
#include "util/slice.h"
#include "util/status.h"

namespace gistcr {

/// On-page layout of a GiST node (paper sections 2-3). After the common
/// page header:
///
///   node header (24 bytes):
///     [0..7]   nsn        - node sequence number (split detection)
///     [8..11]  rightlink  - right sibling from splits (kInvalidPageId: none)
///     [12..13] level      - 0 = leaf
///     [14..15] slot_count
///     [16..17] heap_begin - page offset of the low end of the entry heap
///     [18..19] bp_off     - page offset of this node's own bounding pred
///     [20..21] bp_len
///     [22..23] reserved
///   slot array (4 bytes/slot, grows up):  off u16 | len u16
///   free space
///   entry heap (grows down from page end):
///     entry = key_len u16 | key bytes | value u64 | del_txn u64
///
/// `value` is the child PageId on internal nodes and a packed Rid on
/// leaves. `del_txn` is the logical-delete mark (paper section 7):
/// kInvalidTxnId when live. Entries are unordered (the GiST imposes no key
/// order); specialized intra-node layouts are an extension-level
/// optimization we forgo (linear scans over <=few hundred entries).
///
/// NodeView is a non-owning accessor; all mutation requires the caller to
/// hold the frame's X latch.
class NodeView {
 public:
  static constexpr uint32_t kNodeHeaderOffset = PageView::kHeaderSize;  // 24
  static constexpr uint32_t kNodeHeaderSize = 24;
  static constexpr uint32_t kSlotArrayOffset =
      kNodeHeaderOffset + kNodeHeaderSize;  // 48
  static constexpr uint32_t kSlotSize = 4;
  static constexpr uint32_t kEntryOverhead = 2 + 8 + 8;

  explicit NodeView(char* page_data) : d_(page_data) {}

  /// Formats a fresh GiST node on the page.
  void Init(PageId self, uint16_t level);

  /// Frame::SnapshotBoundsFn for GiST nodes (optimistic reads, DESIGN.md
  /// section 13): a consistent copy needs only the front region (page +
  /// node headers + slot array) and the entry heap growing down from the
  /// page end — the free space between them is never dereferenced.
  /// Called on the live, possibly mid-write page, so both sizes are
  /// clamped to the page; the seqlock version re-check after the copy
  /// rejects torn sizing.
  static void SnapshotBounds(const char* page, uint32_t* head_len,
                             uint32_t* tail_begin);

  Nsn nsn() const { return DecodeFixed64(d_ + kNodeHeaderOffset); }
  void set_nsn(Nsn n) { EncodeFixed64(d_ + kNodeHeaderOffset, n); }

  PageId rightlink() const { return DecodeFixed32(d_ + kNodeHeaderOffset + 8); }
  void set_rightlink(PageId p) { EncodeFixed32(d_ + kNodeHeaderOffset + 8, p); }

  uint16_t level() const { return DecodeFixed16(d_ + kNodeHeaderOffset + 12); }
  bool is_leaf() const { return level() == 0; }

  uint16_t count() const { return DecodeFixed16(d_ + kNodeHeaderOffset + 14); }

  /// This node's own bounding predicate (empty for a brand-new node).
  Slice bp() const;
  /// Replaces the node's BP, relocating it in the heap if it grew.
  Status SetBp(Slice bp);

  Slice entry_key(uint16_t i) const;
  uint64_t entry_value(uint16_t i) const;
  TxnId entry_del_txn(uint16_t i) const;
  void set_entry_del_txn(uint16_t i, TxnId txn);
  IndexEntry GetEntry(uint16_t i) const;

  /// All entries in slot order. \p include_deleted keeps logically deleted
  /// ones (needed everywhere BPs are recomputed: deleted entries must stay
  /// reachable until garbage collected, paper section 7).
  std::vector<IndexEntry> GetAllEntries(bool include_deleted = true) const;

  /// Appends an entry. Fails with kNoSpace when it does not fit even after
  /// compaction.
  Status InsertEntry(const IndexEntry& e);

  /// Removes slot \p i (heap space reclaimed on next compaction).
  void RemoveEntry(uint16_t i);

  /// Replaces the key/predicate of entry \p i (internal BP update).
  Status SetEntryKey(uint16_t i, Slice new_key);

  /// Index of the first entry with this value (child pointer / rid), or -1.
  int FindByValue(uint64_t value) const;
  /// Index of the first entry matching key bytes and value, or -1.
  int FindByKeyValue(Slice key, uint64_t value) const;

  /// Bytes available for a new entry without compaction.
  uint32_t ContiguousFree() const;
  /// Bytes available after compaction (live bytes accounting).
  uint32_t TotalFree() const;
  bool HasSpaceFor(const IndexEntry& e) const {
    return TotalFree() >= EntrySize(e) + kSlotSize;
  }

  /// Rewrites the heap tightly (called internally when needed).
  void Compact();

  static uint32_t EntrySize(const IndexEntry& e) {
    return kEntryOverhead + static_cast<uint32_t>(e.key.size());
  }

  /// Largest key that is guaranteed to fit on an empty node.
  static constexpr uint32_t kMaxKeySize = 1024;

 private:
  uint16_t heap_begin() const {
    return DecodeFixed16(d_ + kNodeHeaderOffset + 16);
  }
  void set_heap_begin(uint16_t v) {
    EncodeFixed16(d_ + kNodeHeaderOffset + 16, v);
  }
  uint16_t bp_off() const { return DecodeFixed16(d_ + kNodeHeaderOffset + 18); }
  uint16_t bp_len() const { return DecodeFixed16(d_ + kNodeHeaderOffset + 20); }
  void set_bp(uint16_t off, uint16_t len) {
    EncodeFixed16(d_ + kNodeHeaderOffset + 18, off);
    EncodeFixed16(d_ + kNodeHeaderOffset + 20, len);
  }
  void set_count(uint16_t c) { EncodeFixed16(d_ + kNodeHeaderOffset + 14, c); }

  uint16_t slot_off(uint16_t i) const {
    return DecodeFixed16(d_ + kSlotArrayOffset + i * kSlotSize);
  }
  uint16_t slot_len(uint16_t i) const {
    return DecodeFixed16(d_ + kSlotArrayOffset + i * kSlotSize + 2);
  }
  void set_slot(uint16_t i, uint16_t off, uint16_t len) {
    EncodeFixed16(d_ + kSlotArrayOffset + i * kSlotSize, off);
    EncodeFixed16(d_ + kSlotArrayOffset + i * kSlotSize + 2, len);
  }

  /// Allocates \p len bytes in the heap, compacting if necessary.
  /// Returns the page offset, or 0 if it cannot fit.
  uint16_t AllocHeap(uint16_t len);

  char* d_;
};

}  // namespace gistcr

#endif  // GISTCR_GIST_NODE_H_
