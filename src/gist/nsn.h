#ifndef GISTCR_GIST_NSN_H_
#define GISTCR_GIST_NSN_H_

#include <atomic>

#include "common/types.h"
#include "util/macros.h"
#include "wal/log_manager.h"

namespace gistcr {

/// Where node sequence numbers come from (paper section 10.1):
///  - kLsn: the log manager's last LSN *is* the global counter. The split
///    record's own LSN becomes the split node's new NSN; no extra
///    synchronization and free recoverability.
///  - kCounter: a dedicated atomic counter, persisted via checkpoint
///    records and redo of splits. Kept as the ablation baseline for
///    benchmark C3.
enum class NsnSource : uint8_t { kLsn = 0, kCounter = 1 };

/// The tree-global monotonically increasing counter of paper section 3.
/// One instance is shared database-wide (the paper notes a single
/// database-wide counter suffices).
class GlobalNsn {
 public:
  GlobalNsn(NsnSource source, LogManager* log)
      : source_(source), log_(log) {}
  GISTCR_DISALLOW_COPY_AND_ASSIGN(GlobalNsn);

  NsnSource source() const { return source_; }

  /// Current counter value — what a descending operation memorizes before
  /// following a child pointer (Figure 3: "nsn = global NSN").
  Nsn Current() const {
    if (source_ == NsnSource::kLsn) return log_->last_lsn();
    return counter_.load(std::memory_order_acquire);
  }

  /// Counter mode only: increments and returns the new value, assigned to
  /// the original node during a split. In LSN mode the split record's LSN
  /// plays this role and no call is needed.
  Nsn BumpCounter() {
    GISTCR_DCHECK(source_ == NsnSource::kCounter);
    return counter_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Recovery: raises the counter to at least \p n (from checkpoint
  /// payloads and redone split records).
  void EnsureAtLeast(Nsn n) {
    Nsn cur = counter_.load(std::memory_order_acquire);
    while (cur < n &&
           !counter_.compare_exchange_weak(cur, n,
                                           std::memory_order_acq_rel)) {
    }
  }

  Nsn CounterValue() const {
    return counter_.load(std::memory_order_acquire);
  }

 private:
  const NsnSource source_;
  LogManager* log_;
  std::atomic<Nsn> counter_{0};
};

}  // namespace gistcr

#endif  // GISTCR_GIST_NSN_H_
