#include "gist/cursor.h"

#include "gist/tree_latch.h"
#include "obs/op_context.h"

namespace gistcr {

// ---------------------------------------------------------------------
// SavedPosition
// ---------------------------------------------------------------------

GistCursor::SavedPosition::~SavedPosition() { Release(); }

GistCursor::SavedPosition::SavedPosition(SavedPosition&& o) noexcept
    : gist_(o.gist_),
      txn_id_(o.txn_id_),
      snapshot_(o.snapshot_),
      stack_(std::move(o.stack_)),
      seen_(std::move(o.seen_)),
      pending_(std::move(o.pending_)) {
  o.gist_ = nullptr;
}

GistCursor::SavedPosition& GistCursor::SavedPosition::operator=(
    SavedPosition&& o) noexcept {
  if (this != &o) {
    Release();
    gist_ = o.gist_;
    txn_id_ = o.txn_id_;
    snapshot_ = o.snapshot_;
    stack_ = std::move(o.stack_);
    seen_ = std::move(o.seen_);
    pending_ = std::move(o.pending_);
    o.gist_ = nullptr;
  }
  return *this;
}

void GistCursor::SavedPosition::Release() {
  if (gist_ == nullptr) return;
  // Drop the extra signaling-lock counts the snapshot was holding. By id:
  // the transaction object may already be gone (its end-of-transaction
  // ReleaseAll made these no-ops). Snapshot cursors never took any.
  if (!snapshot_) {
    for (const auto& e : stack_) {
      gist_->ctx_.locks->Unlock(txn_id_, LockName{LockSpace::kNode, e.page});
    }
  }
  gist_ = nullptr;
}

// ---------------------------------------------------------------------
// GistCursor
// ---------------------------------------------------------------------

GistCursor::GistCursor(Gist* gist, Transaction* txn, Slice query)
    : gist_(gist),
      txn_(txn),
      txn_id_(txn->id()),
      snapshot_(txn->is_snapshot()),
      query_(query.ToString()),
      op_id_(txn->NextOpId()) {}

GistCursor::~GistCursor() {
  // Unvisited stacked pointers still hold their signaling locks. Release
  // by id: destroying a cursor after its transaction committed/aborted is
  // legal (end-of-transaction already dropped the locks; these are
  // no-ops then). Snapshot cursors hold none (see Open).
  if (snapshot_) return;
  for (const auto& e : stack_) {
    gist_->ctx_.locks->Unlock(txn_id_, LockName{LockSpace::kNode, e.page});
  }
}

Status GistCursor::Open() {
  GISTCR_CHECK(!open_);
  // Memorize before reading the root pointer (same ordering rule as
  // Gist::SearchInternal): a root grow between the two steps must carry
  // an NSN above the memorized value.
  const Nsn root_mem = gist_->ctx_.nsn->Current();
  auto root_or = gist_->GetRoot();
  GISTCR_RETURN_IF_ERROR(root_or.status());
  const PageId root = root_or.value();
  if (root == kInvalidPageId) return Status::NotFound("index has no root");
  // Snapshot cursors stack pointers without signaling locks: the active
  // snapshot defers node retirement for as long as the cursor can exist
  // (Gist::SearchSnapshot documents the ordering argument).
  if (!snapshot_) {
    GISTCR_RETURN_IF_ERROR(gist_->SignalLock(txn_, root));
  }
  stack_.push_back({root, root_mem});
  open_ = true;
  return Status::OK();
}

Status GistCursor::FillPending() {
  obs::TreeScope tree_scope;
  const bool hybrid_attach =
      txn_->isolation() == IsolationLevel::kRepeatableRead &&
      gist_->opts_.pred_mode == PredicateMode::kHybrid;
  std::vector<SearchResult> batch;
  while (pending_.empty() && !stack_.empty()) {
    const Gist::StackEntry e = stack_.back();
    stack_.pop_back();
    if (gist_->hooks_.before_visit_node) {
      gist_->hooks_.before_visit_node(e.page);
    }
    // The coarse baseline's tree latch is taken per visited node: a cursor
    // parked between Next() calls must not pin the whole tree.
    internal::TreeLatch tree(
        &gist_->tree_latch_, /*exclusive=*/false,
        gist_->opts_.protocol == ConcurrencyProtocol::kCoarse);
    batch.clear();
    if (snapshot_) {
      const Lsn snap = txn_->snapshot_lsn();
      bool fallback = !gist_->UseOptimisticReads(/*hybrid_attach=*/false);
      if (!fallback) {
        GISTCR_RETURN_IF_ERROR(gist_->ProcessStackEntrySnapshot(
            txn_, e.page, e.nsn, query_, snap, &stack_, &seen_, &batch,
            &fallback));
      }
      if (fallback) {
        GISTCR_RETURN_IF_ERROR(gist_->ProcessStackEntrySnapshotLatched(
            txn_, e.page, e.nsn, query_, snap, &stack_, &seen_, &batch));
      }
      for (auto& r : batch) pending_.push_back(std::move(r));
      continue;
    }
    bool fallback = !gist_->UseOptimisticReads(hybrid_attach);
    if (!fallback) {
      GISTCR_RETURN_IF_ERROR(gist_->ProcessStackEntryOptimistic(
          txn_, e.page, e.nsn, query_, /*lock_rids=*/true, &stack_, &seen_,
          &batch, &fallback));
    }
    if (fallback) {
      GISTCR_RETURN_IF_ERROR(gist_->ProcessStackEntry(
          txn_, e.page, e.nsn, query_, PredKind::kSearch, hybrid_attach,
          /*lock_rids=*/true, op_id_, &stack_, &seen_, &batch, &tree));
    }
    for (auto& r : batch) pending_.push_back(std::move(r));
  }
  return Status::OK();
}

Status GistCursor::Next(SearchResult* out, bool* done) {
  GISTCR_CHECK(open_);
  *done = false;
  if (pending_.empty()) {
    GISTCR_RETURN_IF_ERROR(FillPending());
  }
  if (pending_.empty()) {
    *done = true;
    return Status::OK();
  }
  *out = std::move(pending_.front());
  pending_.pop_front();
  return Status::OK();
}

StatusOr<GistCursor::SavedPosition> GistCursor::Save() {
  GISTCR_CHECK(open_);
  SavedPosition pos;
  pos.gist_ = gist_;
  pos.txn_id_ = txn_id_;
  pos.snapshot_ = snapshot_;
  pos.stack_ = stack_;
  pos.seen_.assign(seen_.begin(), seen_.end());
  pos.pending_ = pending_;
  // Snapshot positions need no extra protection: retirement stays
  // deferred while the owning snapshot transaction is active, which is
  // the only window in which the position can be restored.
  if (snapshot_) return pos;
  // Keep the stacked pointers deletion-protected for the lifetime of the
  // savepoint (paper section 10.2): one extra signaling-lock count each.
  for (const auto& e : pos.stack_) {
    Status st = gist_->SignalLock(txn_, e.page);
    if (!st.ok()) {
      // Roll back the counts taken so far.
      for (const auto& f : pos.stack_) {
        if (&f == &e) break;
        gist_->SignalUnlock(txn_, f.page);
      }
      pos.gist_ = nullptr;
      return st;
    }
  }
  return pos;
}

Status GistCursor::Restore(SavedPosition pos) {
  GISTCR_CHECK(open_);
  GISTCR_CHECK(pos.gist_ == gist_ && pos.txn_id_ == txn_id_);
  // Release the locks of the CURRENT position's stack (snapshot cursors
  // hold none)...
  if (!snapshot_) {
    for (const auto& e : stack_) {
      gist_->SignalUnlock(txn_, e.page);
    }
  }
  // ...and adopt the snapshot's stack along with its retained lock counts.
  stack_ = std::move(pos.stack_);
  seen_.clear();
  seen_.insert(pos.seen_.begin(), pos.seen_.end());
  pending_ = std::move(pos.pending_);
  pos.gist_ = nullptr;  // ownership of the lock counts moved to the cursor
  return Status::OK();
}

}  // namespace gistcr
