#include "gist/node.h"

#include <cstring>

#include "util/macros.h"

namespace gistcr {

void NodeView::SnapshotBounds(const char* page, uint32_t* head_len,
                              uint32_t* tail_begin) {
  // Racy reads of slot_count and heap_begin (see the Frame::SnapshotPage
  // contract): clamp so a torn value can only change how much is copied,
  // never read outside the page.
  const uint32_t slots = DecodeFixed16(page + kNodeHeaderOffset + 14);
  const uint32_t heap = DecodeFixed16(page + kNodeHeaderOffset + 16);
  uint32_t head = kSlotArrayOffset + slots * kSlotSize;
  if (head > kPageSize) head = kPageSize;
  uint32_t tail = heap;
  if (tail < head) tail = head;
  if (tail > kPageSize) tail = kPageSize;
  *head_len = head;
  *tail_begin = tail;
}

void NodeView::Init(PageId self, uint16_t level) {
  PageView pv(d_);
  pv.Format(self, PageType::kGistNode);
  set_nsn(0);
  set_rightlink(kInvalidPageId);
  EncodeFixed16(d_ + kNodeHeaderOffset + 12, level);
  set_count(0);
  set_heap_begin(static_cast<uint16_t>(kPageSize));
  set_bp(0, 0);
}

Slice NodeView::bp() const {
  if (bp_len() == 0 && bp_off() == 0) return Slice();
  return Slice(d_ + bp_off(), bp_len());
}

Status NodeView::SetBp(Slice new_bp) {
  GISTCR_CHECK(new_bp.size() <= kMaxKeySize);
  if (new_bp.size() <= bp_len()) {
    std::memcpy(d_ + bp_off(), new_bp.data(), new_bp.size());
    set_bp(bp_off(), static_cast<uint16_t>(new_bp.size()));
    return Status::OK();
  }
  // Grow: mark the old BP area dead, allocate anew.
  set_bp(0, 0);
  const uint16_t off = AllocHeap(static_cast<uint16_t>(new_bp.size()));
  if (off == 0) return Status::NoSpace("node: no room for BP");
  std::memcpy(d_ + off, new_bp.data(), new_bp.size());
  set_bp(off, static_cast<uint16_t>(new_bp.size()));
  return Status::OK();
}

Slice NodeView::entry_key(uint16_t i) const {
  GISTCR_DCHECK(i < count());
  const char* e = d_ + slot_off(i);
  const uint16_t klen = DecodeFixed16(e);
  return Slice(e + 2, klen);
}

uint64_t NodeView::entry_value(uint16_t i) const {
  GISTCR_DCHECK(i < count());
  const char* e = d_ + slot_off(i);
  const uint16_t klen = DecodeFixed16(e);
  return DecodeFixed64(e + 2 + klen);
}

TxnId NodeView::entry_del_txn(uint16_t i) const {
  GISTCR_DCHECK(i < count());
  const char* e = d_ + slot_off(i);
  const uint16_t klen = DecodeFixed16(e);
  return DecodeFixed64(e + 2 + klen + 8);
}

void NodeView::set_entry_del_txn(uint16_t i, TxnId txn) {
  GISTCR_DCHECK(i < count());
  char* e = d_ + slot_off(i);
  const uint16_t klen = DecodeFixed16(e);
  EncodeFixed64(e + 2 + klen + 8, txn);
}

IndexEntry NodeView::GetEntry(uint16_t i) const {
  IndexEntry e;
  e.key = entry_key(i).ToString();
  e.value = entry_value(i);
  e.del_txn = entry_del_txn(i);
  return e;
}

std::vector<IndexEntry> NodeView::GetAllEntries(bool include_deleted) const {
  std::vector<IndexEntry> out;
  const uint16_t n = count();
  out.reserve(n);
  for (uint16_t i = 0; i < n; i++) {
    if (!include_deleted && entry_del_txn(i) != kInvalidTxnId) continue;
    out.push_back(GetEntry(i));
  }
  return out;
}

uint32_t NodeView::ContiguousFree() const {
  const uint32_t slots_end = kSlotArrayOffset + count() * kSlotSize;
  const uint32_t hb = heap_begin();
  return hb > slots_end ? hb - slots_end : 0;
}

uint32_t NodeView::TotalFree() const {
  // Page size minus header, slot array, live entry bytes and the BP.
  uint32_t live = kSlotArrayOffset + count() * kSlotSize + bp_len();
  for (uint16_t i = 0; i < count(); i++) live += slot_len(i);
  return kPageSize > live ? kPageSize - live : 0;
}

void NodeView::Compact() {
  // Copy live payloads out, rebuild the heap tightly from the page end.
  struct Blob {
    uint16_t idx;  // slot index, or 0xFFFF for the BP
    std::string bytes;
  };
  std::vector<Blob> blobs;
  blobs.reserve(count() + 1);
  for (uint16_t i = 0; i < count(); i++) {
    blobs.push_back({i, std::string(d_ + slot_off(i), slot_len(i))});
  }
  std::string bp_copy(d_ + bp_off(), bp_len());
  uint16_t hb = static_cast<uint16_t>(kPageSize);
  for (auto& b : blobs) {
    hb = static_cast<uint16_t>(hb - b.bytes.size());
    std::memcpy(d_ + hb, b.bytes.data(), b.bytes.size());
    set_slot(b.idx, hb, static_cast<uint16_t>(b.bytes.size()));
  }
  if (!bp_copy.empty()) {
    hb = static_cast<uint16_t>(hb - bp_copy.size());
    std::memcpy(d_ + hb, bp_copy.data(), bp_copy.size());
    set_bp(hb, static_cast<uint16_t>(bp_copy.size()));
  } else {
    set_bp(0, 0);
  }
  set_heap_begin(hb);
}

uint16_t NodeView::AllocHeap(uint16_t len) {
  const uint32_t slots_end = kSlotArrayOffset + count() * kSlotSize;
  uint32_t hb = heap_begin();
  if (hb < slots_end + len) {
    // Fragmented; compact and retry.
    Compact();
    hb = heap_begin();
    if (hb < slots_end + len) return 0;
  }
  const uint16_t off = static_cast<uint16_t>(hb - len);
  set_heap_begin(off);
  return off;
}

Status NodeView::InsertEntry(const IndexEntry& e) {
  GISTCR_CHECK(e.key.size() <= kMaxKeySize);
  const uint16_t esz = static_cast<uint16_t>(EntrySize(e));
  if (TotalFree() < esz + kSlotSize) {
    return Status::NoSpace("node full");
  }
  // Growing the slot directory writes 4 bytes at the current slots_end;
  // a blob allocated flush against the directory (heap_begin close to
  // slots_end) would be clobbered. Compact FIRST — with the old count —
  // whenever the gap cannot absorb both the new slot and the new blob.
  if (ContiguousFree() < esz + kSlotSize) {
    Compact();
  }
  const uint16_t i = count();
  set_count(i + 1);
  const uint16_t off = AllocHeap(esz);
  // Post-compaction the contiguous gap equals TotalFree >= esz + slot, so
  // the allocation cannot fail or re-compact (which would read the fresh,
  // still-uninitialized slot).
  GISTCR_CHECK(off != 0);
  char* p = d_ + off;
  EncodeFixed16(p, static_cast<uint16_t>(e.key.size()));
  std::memcpy(p + 2, e.key.data(), e.key.size());
  EncodeFixed64(p + 2 + e.key.size(), e.value);
  EncodeFixed64(p + 2 + e.key.size() + 8, e.del_txn);
  set_slot(i, off, esz);
  return Status::OK();
}

void NodeView::RemoveEntry(uint16_t i) {
  GISTCR_CHECK(i < count());
  const uint16_t n = count();
  // Shift the slot array down; heap space is reclaimed lazily by Compact.
  std::memmove(d_ + kSlotArrayOffset + i * kSlotSize,
               d_ + kSlotArrayOffset + (i + 1) * kSlotSize,
               (n - i - 1) * kSlotSize);
  set_count(n - 1);
}

Status NodeView::SetEntryKey(uint16_t i, Slice new_key) {
  GISTCR_CHECK(i < count());
  GISTCR_CHECK(new_key.size() <= kMaxKeySize);
  const uint64_t value = entry_value(i);
  const TxnId del_txn = entry_del_txn(i);
  const uint16_t esz = static_cast<uint16_t>(kEntryOverhead + new_key.size());
  if (new_key.size() <= entry_key(i).size()) {
    // Rewrite in place.
    char* p = d_ + slot_off(i);
    EncodeFixed16(p, static_cast<uint16_t>(new_key.size()));
    std::memcpy(p + 2, new_key.data(), new_key.size());
    EncodeFixed64(p + 2 + new_key.size(), value);
    EncodeFixed64(p + 2 + new_key.size() + 8, del_txn);
    set_slot(i, slot_off(i), esz);
    return Status::OK();
  }
  // Grows: free the old blob (mark slot dead so Compact drops it), alloc.
  set_slot(i, 0, 0);
  const uint16_t off = AllocHeap(esz);
  if (off == 0) return Status::NoSpace("node: no room for entry update");
  char* p = d_ + off;
  EncodeFixed16(p, static_cast<uint16_t>(new_key.size()));
  std::memcpy(p + 2, new_key.data(), new_key.size());
  EncodeFixed64(p + 2 + new_key.size(), value);
  EncodeFixed64(p + 2 + new_key.size() + 8, del_txn);
  set_slot(i, off, esz);
  return Status::OK();
}

int NodeView::FindByValue(uint64_t value) const {
  const uint16_t n = count();
  for (uint16_t i = 0; i < n; i++) {
    if (entry_value(i) == value) return i;
  }
  return -1;
}

int NodeView::FindByKeyValue(Slice key, uint64_t value) const {
  const uint16_t n = count();
  for (uint16_t i = 0; i < n; i++) {
    if (entry_value(i) == value && entry_key(i) == key) return i;
  }
  return -1;
}

}  // namespace gistcr
