#include <algorithm>

#include "db/meta_page.h"
#include "gist/gist.h"
#include "gist/tree_latch.h"
#include "obs/trace.h"
#include "storage/fault_injector.h"

namespace gistcr {

using internal::TreeLatch;

// ---------------------------------------------------------------------
// Garbage collection sweep + node deletion (paper sections 7.1-7.2)
// ---------------------------------------------------------------------

Status Gist::ShrinkChildBp(Transaction* txn, PageGuard* parent,
                           PageGuard* child) {
  NodeView cn(child->view().data());
  std::vector<IndexEntry> entries = cn.GetAllEntries(true);
  if (entries.empty()) return Status::OK();
  const std::string actual = ext_->UnionAll(entries, Slice());
  NodeView pn(parent->view().data());
  const int idx = pn.FindByValue(child->page_id());
  if (idx < 0) return Status::OK();  // migrated; next sweep catches it
  if (pn.entry_key(static_cast<uint16_t>(idx)) == Slice(actual) &&
      cn.bp() == Slice(actual)) {
    return Status::OK();
  }
  // Never widen here: shrinking is only sound because the union covers all
  // physically present entries (including logically deleted ones — their
  // paths must survive until GC, section 7).
  LogRecord rec;
  rec.type = LogRecordType::kParentEntryUpdate;
  ParentEntryUpdatePayload pl;
  pl.child_page = child->page_id();
  pl.parent_page = parent->page_id();
  pl.child_value = child->page_id();
  pl.new_bp = actual;
  pl.EncodeTo(&rec.payload);
  GISTCR_RETURN_IF_ERROR(ctx_.txns->AppendTxnLog(txn, &rec));
  GISTCR_RETURN_IF_ERROR(pn.SetEntryKey(static_cast<uint16_t>(idx), actual));
  parent->view().set_page_lsn(rec.lsn);
  parent->frame()->MarkDirty(rec.lsn);
  GISTCR_RETURN_IF_ERROR(cn.SetBp(actual));
  child->view().set_page_lsn(rec.lsn);
  child->frame()->MarkDirty(rec.lsn);
  return Status::OK();
}

Status Gist::TryDeleteChild(Transaction* txn, PageGuard* parent,
                            PageId child, bool* deleted) {
  *deleted = false;
  // Snapshot traversals stack node pointers WITHOUT signaling locks, so
  // the drain check below cannot see them; instead retirement is deferred
  // wholesale while any snapshot is active. Checked under the parent's X
  // latch (held by the GC sweep): a snapshot registered after this check
  // must traverse through the latched parent and will find the entry
  // already removed — it can never stack a pointer to the victim.
  if (ctx_.mvcc != nullptr && !ctx_.mvcc->CanRetireNodes()) {
    return Status::OK();
  }
  NodeView pn(parent->view().data());

  // Refuse to delete the root.
  auto root_or = GetRoot();
  GISTCR_RETURN_IF_ERROR(root_or.status());
  if (child == root_or.value()) return Status::OK();

  PageGuard cg;
  {
    auto frame_or = ctx_.pool->Fetch(child);
    GISTCR_RETURN_IF_ERROR(frame_or.status());
    cg = PageGuard(ctx_.pool, frame_or.value());
    if (!cg.TryWLatch()) return Status::OK();  // contended; skip
  }
  NodeView cn(cg.view().data());
  if (PageView(cg.view().data()).page_type() != PageType::kGistNode ||
      cn.count() != 0) {
    return Status::OK();
  }

  // Find the unique rightlink owner (the node `child` split from, or the
  // node rewired to it by an earlier deletion): walk the rightlink chains
  // hanging off this parent's other entries. If the owner lives under a
  // different parent we conservatively skip (drain technique stays safe).
  PageGuard owner;
  bool owner_found = false;
  bool child_is_target = false;
  for (uint16_t j = 0; j < pn.count() && !owner_found; j++) {
    PageId cur = static_cast<PageId>(pn.entry_value(j));
    if (cur == child) continue;
    int chain_guard = 0;
    while (cur != kInvalidPageId && chain_guard++ < 256) {
      if (cur == child) break;
      // GC chain walk uses try-latches only (bails on contention), so
      // fetching the next link under the previous latch cannot deadlock.
      // gistcr-lint: allow(io-under-latch)
      auto fo = ctx_.pool->Fetch(cur);
      GISTCR_RETURN_IF_ERROR(fo.status());
      PageGuard g(ctx_.pool, fo.value());
      if (!g.TryWLatch()) break;  // contended; give up on this chain
      if (PageView(g.view().data()).page_type() != PageType::kGistNode) {
        break;
      }
      NodeView nv(g.view().data());
      if (nv.rightlink() == child) {
        owner = std::move(g);
        owner_found = true;
        break;
      }
      cur = nv.rightlink();
    }
  }
  (void)child_is_target;
  // A node that was never split into (no inbound rightlink) can also be
  // deleted — but only if we can prove no inbound link exists. The chain
  // walk above cannot prove a negative cheaply, so we require an owner
  // *or* that the child itself has never been linked to: conservatively,
  // only delete when we found the owner, or when no other entry's chain
  // can reach it AND the child has no rightlink history we must preserve.
  if (!owner_found) {
    // Safe case: the child's NSN is 0 (never split) and no owner was found
    // under this parent. An inbound rightlink to it could still exist from
    // a node under another parent only if that node once split into this
    // child — impossible if this child was created fresh (split targets
    // are fresh pages; their creators are their chain predecessors, which
    // start under the same parent entry set we just walked). Still, the
    // creator's entry may have migrated to another parent, so we only
    // proceed when the child has never been split (NSN==0 under a fresh
    // counter is not reliable with LSN NSNs) — skip instead.
    return Status::OK();
  }

  // Drain check (section 7.2): an X signaling lock succeeds only when no
  // traversal holds a stacked pointer to the node.
  Status lock_st =
      ctx_.locks->Lock(txn->id(), LockName{LockSpace::kNode, child},
                       LockMode::kExclusive, /*wait=*/false);
  if (!lock_st.ok()) return Status::OK();  // drain not complete; retry later

  const Lsn nta = ctx_.txns->NtaBegin(txn);
  Status st = Status::OK();

  // 1. Remove the parent entry.
  const int idx = pn.FindByValue(child);
  GISTCR_CHECK(idx >= 0);
  {
    LogRecord rec;
    rec.type = LogRecordType::kInternalEntryDelete;
    EntryOpPayload pl;
    pl.page = parent->page_id();
    pl.entry = pn.GetEntry(static_cast<uint16_t>(idx));
    pl.EncodeTo(&rec.payload);
    st = ctx_.txns->AppendTxnLog(txn, &rec);
    if (st.ok()) {
      pn.RemoveEntry(static_cast<uint16_t>(idx));
      parent->view().set_page_lsn(rec.lsn);
      parent->frame()->MarkDirty(rec.lsn);
    }
  }
  // 2. Rewire the owner's rightlink around the victim.
  // Parent entry removed, chain still routed through the victim; the open
  // NTA must undo the removal if we die here.
  if constexpr (kFaultInjectionCompiled) {
    if (st.ok()) {
      st = FaultInjector::Global().CheckCrashPoint(
          "gc.node_delete.before_rightlink_rewire");
    }
  }
  if (st.ok()) {
    NodeView on(owner.view().data());
    LogRecord rec;
    rec.type = LogRecordType::kRightlinkUpdate;
    RightlinkUpdatePayload pl;
    pl.page = owner.page_id();
    pl.old_rightlink = child;
    pl.new_rightlink = cn.rightlink();
    pl.EncodeTo(&rec.payload);
    st = ctx_.txns->AppendTxnLog(txn, &rec);
    if (st.ok()) {
      on.set_rightlink(pl.new_rightlink);
      owner.view().set_page_lsn(rec.lsn);
      owner.frame()->MarkDirty(rec.lsn);
    }
  }
  // 3. Return the page to the allocator.
  if (st.ok()) {
    st = ctx_.alloc->Free(txn, child);
  }
  if (st.ok()) {
    // Advisory: mark the frame's content free so stale readers bail.
    cg.view().set_page_type(PageType::kFree);
    cg.frame()->MarkDirty(txn->last_lsn());
    st = ctx_.txns->NtaEnd(txn, nta);
  }
  ctx_.locks->Unlock(txn->id(), LockName{LockSpace::kNode, child});
  if (st.ok()) {
    *deleted = true;
    stats_.nodes_deleted.Add(1);
  }
  return st;
}

Status Gist::GarbageCollect(Transaction* txn, uint64_t* entries_removed,
                            uint64_t* nodes_deleted) {
  GISTCR_TRACE_SCOPE("gist.gc");
  uint64_t removed = 0, deleted = 0;
  MutexLock gc_guard(gc_mu_);
  TreeLatch tree(&tree_latch_, /*exclusive=*/true,
                 opts_.protocol == ConcurrencyProtocol::kCoarse);

  // Phase A: snapshot the node population (single-latch BFS).
  auto root_or = GetRoot();
  GISTCR_RETURN_IF_ERROR(root_or.status());
  if (root_or.value() == kInvalidPageId) {
    return Status::NotFound("index has no root");
  }
  std::vector<std::pair<PageId, uint16_t>> internals;  // (pid, level)
  std::vector<PageId> leaves;
  {
    std::vector<PageId> frontier{root_or.value()};
    std::unordered_set<PageId> visited;
    while (!frontier.empty()) {
      const PageId pid = frontier.back();
      frontier.pop_back();
      if (!visited.insert(pid).second) continue;
      PageGuard g;
      GISTCR_RETURN_IF_ERROR(FetchLatched(pid, /*exclusive=*/false, &g));
      if (PageView(g.view().data()).page_type() != PageType::kGistNode) {
        continue;
      }
      NodeView node(g.view().data());
      if (node.rightlink() != kInvalidPageId) {
        frontier.push_back(node.rightlink());
      }
      if (node.is_leaf()) {
        leaves.push_back(pid);
        continue;
      }
      internals.emplace_back(pid, node.level());
      for (uint16_t i = 0; i < node.count(); i++) {
        frontier.push_back(static_cast<PageId>(node.entry_value(i)));
      }
    }
  }

  // Phase B: collect committed-deleted leaf entries.
  for (PageId pid : leaves) {
    PageGuard g;
    GISTCR_RETURN_IF_ERROR(FetchLatched(pid, /*exclusive=*/true, &g));
    if (PageView(g.view().data()).page_type() != PageType::kGistNode) {
      continue;
    }
    NodeView node(g.view().data());
    if (!node.is_leaf()) continue;
    GISTCR_RETURN_IF_ERROR(LeafGc(txn, &g, &removed));
  }

  // Phase C: bottom-up BP shrink and empty-node deletion (level 1 parents
  // first so higher levels see shrunken child BPs).
  std::sort(internals.begin(), internals.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (const auto& [pid, level] : internals) {
    (void)level;
    PageGuard g;
    GISTCR_RETURN_IF_ERROR(FetchLatched(pid, /*exclusive=*/true, &g));
    if (PageView(g.view().data()).page_type() != PageType::kGistNode) {
      continue;
    }
    uint16_t i = 0;
    for (;;) {
      NodeView pn(g.view().data());
      if (pn.is_leaf() || i >= pn.count()) break;
      const PageId child = static_cast<PageId>(pn.entry_value(i));
      bool child_deleted = false;
      {
        // Downward parent→child fetch in GC; the child is only try-latched
        // below, so holding the parent latch here cannot deadlock.
        // gistcr-lint: allow(io-under-latch)
        auto fo = ctx_.pool->Fetch(child);
        GISTCR_RETURN_IF_ERROR(fo.status());
        PageGuard cg(ctx_.pool, fo.value());
        if (cg.TryWLatch()) {
          if (PageView(cg.view().data()).page_type() == PageType::kGistNode) {
            NodeView cn(cg.view().data());
            if (cn.count() == 0) {
              cg.Drop();  // TryDeleteChild re-latches
              GISTCR_RETURN_IF_ERROR(
                  TryDeleteChild(txn, &g, child, &child_deleted));
            } else {
              GISTCR_RETURN_IF_ERROR(ShrinkChildBp(txn, &g, &cg));
            }
          }
        }
      }
      if (!child_deleted) i++;
      if (child_deleted) deleted++;
    }
  }

  if (entries_removed != nullptr) *entries_removed = removed;
  if (nodes_deleted != nullptr) *nodes_deleted = deleted;
  return Status::OK();
}

// ---------------------------------------------------------------------
// Introspection / validation
// ---------------------------------------------------------------------

Status Gist::CheckNode(PageId pid, Slice parent_pred, uint32_t expected_level,
                       bool has_expected_level,
                       std::unordered_set<uint64_t>* rids,
                       std::unordered_set<PageId>* visited) {
  if (!visited->insert(pid).second) {
    return Status::Corruption("node reachable twice: " + std::to_string(pid));
  }
  PageGuard g;
  GISTCR_RETURN_IF_ERROR(FetchLatched(pid, /*exclusive=*/false, &g));
  if (PageView(g.view().data()).page_type() != PageType::kGistNode) {
    return Status::Corruption("non-node page in tree: " + std::to_string(pid));
  }
  NodeView node(g.view().data());
  if (has_expected_level && node.level() != expected_level) {
    return Status::Corruption("level mismatch at " + std::to_string(pid));
  }
  if (!parent_pred.empty()) {
    if (node.count() > 0 && !ext_->Contains(parent_pred, node.bp())) {
      return Status::Corruption("parent pred does not contain child BP at " +
                                std::to_string(pid));
    }
  }
  std::vector<IndexEntry> entries = node.GetAllEntries(true);
  Slice bp = node.bp();
  for (const IndexEntry& e : entries) {
    if (!ext_->Contains(bp, e.key)) {
      return Status::Corruption("BP does not contain entry at " +
                                std::to_string(pid));
    }
  }
  if (node.is_leaf()) {
    for (const IndexEntry& e : entries) {
      if (e.del_txn != kInvalidTxnId) continue;
      if (!rids->insert(e.value).second) {
        return Status::Corruption("duplicate rid " + std::to_string(e.value));
      }
    }
    return Status::OK();
  }
  const uint16_t level = node.level();
  std::string own_bp = bp.ToString();
  g.Drop();
  for (const IndexEntry& e : entries) {
    GISTCR_RETURN_IF_ERROR(CheckNode(static_cast<PageId>(e.value), e.key,
                                     level - 1, true, rids, visited));
  }
  return Status::OK();
}

Status Gist::CheckInvariants() {
  auto root_or = GetRoot();
  GISTCR_RETURN_IF_ERROR(root_or.status());
  if (root_or.value() == kInvalidPageId) {
    return Status::NotFound("index has no root");
  }
  std::unordered_set<uint64_t> rids;
  std::unordered_set<PageId> visited;
  return CheckNode(root_or.value(), Slice(), 0, false, &rids, &visited);
}

Status Gist::DumpEntries(std::vector<IndexEntry>* out) {
  auto root_or = GetRoot();
  GISTCR_RETURN_IF_ERROR(root_or.status());
  std::vector<PageId> frontier{root_or.value()};
  std::unordered_set<PageId> visited;
  while (!frontier.empty()) {
    const PageId pid = frontier.back();
    frontier.pop_back();
    if (!visited.insert(pid).second) continue;
    PageGuard g;
    GISTCR_RETURN_IF_ERROR(FetchLatched(pid, /*exclusive=*/false, &g));
    if (PageView(g.view().data()).page_type() != PageType::kGistNode) {
      continue;
    }
    NodeView node(g.view().data());
    if (node.rightlink() != kInvalidPageId) {
      frontier.push_back(node.rightlink());
    }
    if (node.is_leaf()) {
      for (const IndexEntry& e : node.GetAllEntries(true)) {
        out->push_back(e);
      }
    } else {
      for (uint16_t i = 0; i < node.count(); i++) {
        frontier.push_back(static_cast<PageId>(node.entry_value(i)));
      }
    }
  }
  return Status::OK();
}

StatusOr<uint32_t> Gist::Height() {
  auto root_or = GetRoot();
  GISTCR_RETURN_IF_ERROR(root_or.status());
  PageId pid = root_or.value();
  if (pid == kInvalidPageId) return Status::NotFound("no root");
  uint32_t h = 1;
  for (;;) {
    PageGuard g;
    GISTCR_RETURN_IF_ERROR(FetchLatched(pid, /*exclusive=*/false, &g));
    NodeView node(g.view().data());
    if (node.is_leaf()) return h;
    if (node.count() == 0) return Status::Corruption("empty internal node");
    pid = static_cast<PageId>(node.entry_value(0));
    h++;
  }
}

}  // namespace gistcr
