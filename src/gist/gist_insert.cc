#include <algorithm>
#include <limits>

#include "db/meta_page.h"
#include "gist/gist.h"
#include "gist/tree_latch.h"
#include "obs/op_context.h"
#include "obs/trace.h"
#include "storage/fault_injector.h"

namespace gistcr {

using internal::TreeLatch;

namespace {

double NodePenalty(const GistExtension* ext, NodeView& node, Slice key) {
  Slice bp = node.bp();
  if (bp.empty()) return std::numeric_limits<double>::max();
  return ext->Penalty(bp, key);
}

}  // namespace

// ---------------------------------------------------------------------
// Descent (Figure 4, locateLeaf)
// ---------------------------------------------------------------------

Status Gist::ChaseForPenalty(Transaction* txn, PageGuard* g, Nsn delimiter,
                             Slice key, bool exclusive) {
  // Hand-over-hand, strictly left-to-right: hold the best candidate and
  // the walker; pick the chain node with the lowest insert penalty.
  stats_.rightlink_follows.Add(1);
  obs::BumpRestarts();
  PageGuard best = std::move(*g);
  NodeView best_node(best.view().data());
  double best_pen = NodePenalty(ext_, best_node, key);
  Nsn cur_nsn = best_node.nsn();
  PageId next = best_node.rightlink();
  PageGuard walker;  // trails `best` or sits right of it

  while (cur_nsn > delimiter && next != kInvalidPageId) {
    GISTCR_RETURN_IF_ERROR(SignalLock(txn, next));
    PageGuard cand;
    // B-link rightward chase: latch coupling onto the right sibling while
    // the current node stays latched is the paper's deadlock-free order
    // (left-to-right only). gistcr-lint: allow(io-under-latch)
    GISTCR_RETURN_IF_ERROR(FetchLatched(next, exclusive, &cand));
    NodeView cn(cand.view().data());
    const double pen = NodePenalty(ext_, cn, key);
    cur_nsn = cn.nsn();
    const PageId after = cn.rightlink();
    if (pen < best_pen) {
      const PageId old_best = best.page_id();
      best.Drop();
      SignalUnlock(txn, old_best);
      best = std::move(cand);
      best_pen = pen;
    } else {
      // Keep `cand` latched as the walker only long enough to read its
      // rightlink (done above); release it now.
      const PageId cpid = cand.page_id();
      cand.Drop();
      SignalUnlock(txn, cpid);
    }
    next = after;
  }
  *g = std::move(best);
  return Status::OK();
}

Status Gist::LocateLeaf(Transaction* txn, Slice key,
                        std::vector<StackEntry>* stack, PageGuard* leaf) {
  // Memorize BEFORE reading the root pointer (same ordering rule as
  // SearchInternal): a root grow in the window must carry an NSN above the
  // memorized value or the chase below cannot detect it.
  Nsn p_nsn = ctx_.nsn->Current();
  auto root_or = GetRoot();
  GISTCR_RETURN_IF_ERROR(root_or.status());
  PageId p = root_or.value();
  if (p == kInvalidPageId) return Status::NotFound("index has no root");
  GISTCR_RETURN_IF_ERROR(SignalLock(txn, p));
  int known_level = -1;  // unknown until the first latch

  for (;;) {
    const bool expect_leaf = known_level == 0;
    PageGuard g;
    GISTCR_RETURN_IF_ERROR(FetchLatched(p, /*exclusive=*/expect_leaf, &g));
    {
      NodeView node(g.view().data());
      if (known_level < 0 && node.is_leaf()) {
        // Root is a leaf: we latched S, need X. Re-latch; the NSN chase
        // below compensates for any split in the window.
        g.Unlatch();
        g.WLatch();
      }
    }
    NodeView node(g.view().data());
    if (LinkProtocol() && node.nsn() > p_nsn) {
      // Missed split: pick the lowest-penalty node in the rightlink chain
      // delimited by the memorized counter (Figure 4).
      GISTCR_RETURN_IF_ERROR(
          ChaseForPenalty(txn, &g, p_nsn, key, node.is_leaf()));
    }
    NodeView cur(g.view().data());
    if (cur.is_leaf()) {
      *leaf = std::move(g);
      return Status::OK();
    }
    // Internal: record on the parent stack with its NSN as of this visit.
    stack->push_back({g.page_id(), cur.nsn()});
    const uint16_t n = cur.count();
    if (n == 0) return Status::Corruption("empty internal node");
    uint16_t best = 0;
    double best_pen = std::numeric_limits<double>::max();
    for (uint16_t i = 0; i < n; i++) {
      const double pen = ext_->Penalty(cur.entry_key(i), key);
      if (pen < best_pen) {
        best_pen = pen;
        best = i;
      }
    }
    const PageId child = static_cast<PageId>(cur.entry_value(best));
    known_level = cur.level() - 1;
    const Nsn next_nsn = ctx_.nsn->Current();  // memorize before unlatching
    GISTCR_RETURN_IF_ERROR(SignalLock(txn, child));
    g.Drop();
    p = child;
    p_nsn = next_nsn;
  }
}

// ---------------------------------------------------------------------
// Parent location
// ---------------------------------------------------------------------

Status Gist::LatchParentForChild(Transaction* txn,
                                 std::vector<StackEntry>* stack, size_t idx,
                                 PageId child, PageGuard* out) {
  (void)txn;
  PageId pid = (*stack)[idx].page;
  for (;;) {
    PageGuard g;
    GISTCR_RETURN_IF_ERROR(FetchLatched(pid, /*exclusive=*/true, &g));
    NodeView node(g.view().data());
    if (PageView(g.view().data()).page_type() == PageType::kGistNode &&
        node.FindByValue(child) >= 0) {
      *out = std::move(g);
      return Status::OK();
    }
    const PageId rl = node.rightlink();
    g.Drop();
    if (rl == kInvalidPageId) {
      // The entry is not in this chain: the root grew past this level (or
      // the parent's entry migrated in a way the stack cannot see).
      return FindParentExhaustive(child, out);
    }
    pid = rl;
  }
}

Status Gist::FindParentExhaustive(PageId child, PageGuard* out) {
  for (int attempt = 0; attempt < 16; attempt++) {
    auto root_or = GetRoot();
    GISTCR_RETURN_IF_ERROR(root_or.status());
    std::vector<PageId> frontier{root_or.value()};
    std::unordered_set<PageId> visited;
    PageId found = kInvalidPageId;
    while (!frontier.empty() && found == kInvalidPageId) {
      const PageId pid = frontier.back();
      frontier.pop_back();
      if (!visited.insert(pid).second) continue;
      PageGuard g;
      GISTCR_RETURN_IF_ERROR(FetchLatched(pid, /*exclusive=*/false, &g));
      if (PageView(g.view().data()).page_type() != PageType::kGistNode) {
        continue;
      }
      NodeView node(g.view().data());
      if (node.rightlink() != kInvalidPageId) {
        frontier.push_back(node.rightlink());
      }
      if (node.is_leaf()) continue;
      if (node.FindByValue(child) >= 0) {
        found = pid;
        break;
      }
      for (uint16_t i = 0; i < node.count(); i++) {
        frontier.push_back(static_cast<PageId>(node.entry_value(i)));
      }
    }
    if (found == kInvalidPageId) continue;
    PageGuard g;
    GISTCR_RETURN_IF_ERROR(FetchLatched(found, /*exclusive=*/true, &g));
    NodeView node(g.view().data());
    if (PageView(g.view().data()).page_type() == PageType::kGistNode &&
        node.FindByValue(child) >= 0) {
      *out = std::move(g);
      return Status::OK();
    }
  }
  return Status::Corruption("parent of node not found");
}

// ---------------------------------------------------------------------
// Split (Figure 4, splitNode) — one nested top action
// ---------------------------------------------------------------------

Status Gist::SplitNode(Transaction* txn, PageGuard* node,
                       std::vector<StackEntry>* stack, size_t ancestors) {
  GISTCR_TRACE_SCOPE("gist.split");
  const Lsn nta = ctx_.txns->NtaBegin(txn);
  GISTCR_RETURN_IF_ERROR(SplitNodeInNta(txn, node, stack, ancestors));
  if (hooks_.before_split_nta_end) {
    GISTCR_RETURN_IF_ERROR(hooks_.before_split_nta_end());
  }
  // Full split applied and logged; the NTA-End that commits it is not.
  // Recovery must roll the whole split back (or forward via redo + undo of
  // the open NTA), never leave a half-installed sibling.
  GISTCR_CRASHPOINT("split.before_nta_commit");
  return ctx_.txns->NtaEnd(txn, nta);
}

Status Gist::SplitNodeInNta(Transaction* txn, PageGuard* g,
                            std::vector<StackEntry>* stack,
                            size_t ancestors) {
  stats_.splits.Add(1);
  NodeView node(g->view().data());
  const PageId orig_pid = g->page_id();

  // Root handling: if this node is the current root, grow upward instead
  // of splitting sideways (a root has no rightlink to inherit).
  if (ancestors == 0) {
    auto root_or = GetRoot();
    GISTCR_RETURN_IF_ERROR(root_or.status());
    if (root_or.value() == orig_pid) {
      return GrowRoot(txn, g);
    }
    // The root grew during our descent: find the real parent path.
    PageGuard parent;
    GISTCR_RETURN_IF_ERROR(FindParentExhaustive(orig_pid, &parent));
    // Build a one-entry stack for the recursion.
    std::vector<StackEntry> pstack{{parent.page_id(),
                                    NodeView(parent.view().data()).nsn()}};
    parent.Drop();  // LatchParentForChild will re-latch (and chase)
    return SplitNodeInNta(txn, g, &pstack, 1);
  }

  PageGuard parent;
  GISTCR_RETURN_IF_ERROR(
      LatchParentForChild(txn, stack, ancestors - 1, orig_pid, &parent));
  // Allocate the right sibling.
  auto new_pid_or = ctx_.alloc->Allocate(txn);
  GISTCR_RETURN_IF_ERROR(new_pid_or.status());
  const PageId new_pid = new_pid_or.value();
  // Fresh-page materialization (no disk read, never contended) under the
  // split latches — the NTA must install the sibling atomically.
  // gistcr-lint: allow(io-under-latch)
  auto frame_or = ctx_.pool->NewPage(new_pid);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard ng(ctx_.pool, frame_or.value());
  ng.WLatch();

  // Distribute entries.
  std::vector<IndexEntry> entries = node.GetAllEntries(true);
  GISTCR_CHECK(entries.size() >= 2);
  std::vector<bool> to_right;
  ext_->PickSplit(entries, &to_right);
  GISTCR_CHECK(to_right.size() == entries.size());
  SplitPayload pl;
  pl.orig_page = orig_pid;
  pl.new_page = new_pid;
  pl.level = node.level();
  pl.old_nsn = node.nsn();
  pl.old_rightlink = node.rightlink();
  std::vector<IndexEntry> kept;
  for (size_t i = 0; i < entries.size(); i++) {
    if (to_right[i]) {
      pl.moved.push_back(entries[i]);
    } else {
      kept.push_back(entries[i]);
    }
  }
  GISTCR_CHECK(!pl.moved.empty() && !kept.empty());
  pl.orig_bp_before = node.bp().ToString();
  pl.orig_bp_after = ext_->UnionAll(kept, Slice());
  pl.new_bp = ext_->UnionAll(pl.moved, Slice());

  // NSN: dedicated counter bumps before logging; LSN mode uses the split
  // record's own LSN (encoded as 0; redo substitutes rec.lsn).
  if (ctx_.nsn->source() == NsnSource::kCounter) {
    pl.new_nsn = ctx_.nsn->BumpCounter();
  } else {
    pl.new_nsn = 0;
  }

  LogRecord rec;
  rec.type = LogRecordType::kSplit;
  pl.EncodeTo(&rec.payload);
  GISTCR_RETURN_IF_ERROR(ctx_.txns->AppendTxnLog(txn, &rec));
  // Split record logged, neither page touched yet (redo must reconstruct
  // both halves from the record alone).
  GISTCR_CRASHPOINT("split.after_log_append");
  const Nsn new_nsn = pl.new_nsn != 0 ? pl.new_nsn : rec.lsn;

  // Apply to the original node: drop moved entries, shrink BP, bump NSN,
  // point the rightlink at the new sibling.
  for (const IndexEntry& m : pl.moved) {
    const int idx = node.FindByKeyValue(m.key, m.value);
    GISTCR_CHECK(idx >= 0);
    node.RemoveEntry(static_cast<uint16_t>(idx));
  }
  GISTCR_RETURN_IF_ERROR(node.SetBp(pl.orig_bp_after));
  node.set_nsn(new_nsn);
  node.set_rightlink(new_pid);
  g->view().set_page_lsn(rec.lsn);
  g->frame()->MarkDirty(rec.lsn);

  // Apply to the new sibling: it inherits the original's prior NSN and
  // rightlink (Figure 2).
  NodeView nn(ng.view().data());
  nn.Init(new_pid, pl.level);
  for (const IndexEntry& m : pl.moved) {
    GISTCR_RETURN_IF_ERROR(nn.InsertEntry(m));
  }
  GISTCR_RETURN_IF_ERROR(nn.SetBp(pl.new_bp));
  nn.set_nsn(pl.old_nsn);
  nn.set_rightlink(pl.old_rightlink);
  ng.view().set_page_lsn(rec.lsn);
  ng.frame()->MarkDirty(rec.lsn);

  // Hybrid locking bookkeeping (section 4.3 case 1): predicates consistent
  // with the new sibling's BP are replicated there; signaling locks are
  // copied so indirectly referenced nodes stay deletion-protected
  // (section 7.2).
  Slice new_bp(pl.new_bp);
  ctx_.preds->ReplicateOnSplit(orig_pid, new_pid,
                               [&](const PredAttachment& a) {
                                 return PredConsistentWithBp(new_bp, a);
                               });
  ctx_.locks->ReplicateSharedHolders(LockName{LockSpace::kNode, orig_pid},
                                     LockName{LockSpace::kNode, new_pid});

  // Install the new sibling's parent entry and refresh the original's.
  IndexEntry parent_entry;
  parent_entry.key = pl.new_bp;
  parent_entry.value = new_pid;

  // Both halves written and chained; the parent has no entry for the new
  // sibling yet (reachable only via the rightlink — the B-link invariant
  // recovery relies on).
  GISTCR_CRASHPOINT("split.before_parent_install");

  for (;;) {
    NodeView pn(parent.view().data());
    if (!NodeIsFull(pn, parent_entry)) break;
    const size_t parent_ancestors = ancestors - 1;
    GISTCR_RETURN_IF_ERROR(
        SplitNodeInNta(txn, &parent, stack, parent_ancestors));
    // Our child's entry may have moved to the parent's new sibling; chase.
    for (;;) {
      NodeView cur(parent.view().data());
      if (cur.FindByValue(orig_pid) >= 0) break;
      const PageId rl = cur.rightlink();
      GISTCR_CHECK(rl != kInvalidPageId);
      PageGuard next;
      // Parent-level rightward chase (split parent moved the child's
      // entry): left-to-right latch coupling, deadlock-free.
      // gistcr-lint: allow(io-under-latch)
      GISTCR_RETURN_IF_ERROR(FetchLatched(rl, /*exclusive=*/true, &next));
      parent.Drop();
      parent = std::move(next);
    }
  }

  {
    NodeView pn(parent.view().data());
    LogRecord add;
    add.type = LogRecordType::kInternalEntryAdd;
    EntryOpPayload ap;
    ap.page = parent.page_id();
    ap.entry = parent_entry;
    ap.EncodeTo(&add.payload);
    GISTCR_RETURN_IF_ERROR(ctx_.txns->AppendTxnLog(txn, &add));
    GISTCR_RETURN_IF_ERROR(pn.InsertEntry(parent_entry));
    parent.view().set_page_lsn(add.lsn);
    parent.frame()->MarkDirty(add.lsn);

    const int idx = pn.FindByValue(orig_pid);
    GISTCR_CHECK(idx >= 0);
    LogRecord upd;
    upd.type = LogRecordType::kInternalEntryUpdate;
    EntryOpPayload up;
    up.page = parent.page_id();
    up.entry.key = pl.orig_bp_after;
    up.entry.value = orig_pid;
    up.old_bp = pn.entry_key(static_cast<uint16_t>(idx)).ToString();
    up.EncodeTo(&upd.payload);
    GISTCR_RETURN_IF_ERROR(ctx_.txns->AppendTxnLog(txn, &upd));
    GISTCR_RETURN_IF_ERROR(
        pn.SetEntryKey(static_cast<uint16_t>(idx), pl.orig_bp_after));
    parent.view().set_page_lsn(upd.lsn);
    parent.frame()->MarkDirty(upd.lsn);
  }
  return Status::OK();
}

Status Gist::GrowRoot(Transaction* txn, PageGuard* g) {
  stats_.root_grows.Add(1);
  NodeView node(g->view().data());
  const PageId old_root = g->page_id();

  // Split the root's content sideways first (ordinary Split record; the
  // old root keeps its page id and gains a rightlink to the sibling), then
  // hang both under a brand-new root and move the meta pointer up.
  auto sib_or = ctx_.alloc->Allocate(txn);
  GISTCR_RETURN_IF_ERROR(sib_or.status());
  const PageId sib_pid = sib_or.value();
  auto sib_frame_or = ctx_.pool->NewPage(sib_pid);
  GISTCR_RETURN_IF_ERROR(sib_frame_or.status());
  PageGuard sg(ctx_.pool, sib_frame_or.value());
  sg.WLatch();

  std::vector<IndexEntry> entries = node.GetAllEntries(true);
  GISTCR_CHECK(entries.size() >= 2);
  std::vector<bool> to_right;
  ext_->PickSplit(entries, &to_right);
  GISTCR_CHECK(to_right.size() == entries.size());

  SplitPayload pl;
  pl.orig_page = old_root;
  pl.new_page = sib_pid;
  pl.level = node.level();
  pl.old_nsn = node.nsn();
  pl.old_rightlink = node.rightlink();  // kInvalidPageId for a root
  std::vector<IndexEntry> kept;
  for (size_t i = 0; i < entries.size(); i++) {
    if (to_right[i]) {
      pl.moved.push_back(entries[i]);
    } else {
      kept.push_back(entries[i]);
    }
  }
  GISTCR_CHECK(!pl.moved.empty() && !kept.empty());
  pl.orig_bp_before = node.bp().ToString();
  pl.orig_bp_after = ext_->UnionAll(kept, Slice());
  pl.new_bp = ext_->UnionAll(pl.moved, Slice());
  if (ctx_.nsn->source() == NsnSource::kCounter) {
    pl.new_nsn = ctx_.nsn->BumpCounter();
  }

  // Allocate and latch the new root before any record is logged, so the
  // meta page can be latched next (kNodeLatch < kMetaLatch) and held
  // across the whole growth.
  auto root_or = ctx_.alloc->Allocate(txn);
  GISTCR_RETURN_IF_ERROR(root_or.status());
  const PageId new_root = root_or.value();
  // GrowRoot: fresh root page materialized while both halves of the old
  // root stay latched (no disk read, no contention on an unpublished
  // page). gistcr-lint: allow(io-under-latch)
  auto root_frame_or = ctx_.pool->NewPage(new_root);
  GISTCR_RETURN_IF_ERROR(root_frame_or.status());
  PageGuard rg(ctx_.pool, root_frame_or.value());
  rg.WLatch();

  // X-latch the meta page BEFORE the NSN-assigning Split record is
  // appended. Readers memorize the global counter and then read the root
  // pointer from the meta page; if the Split's LSN were assigned while the
  // meta page was still readable, a reader could memorize a counter >= the
  // new NSN yet still descend via the stale root pointer — the strict
  // `nsn > memorized` test at the shrunken old root would then hide the
  // moved keys and the reader would never follow the rightlink. Holding
  // the meta latch from before the append to after SetRoot closes that
  // window: any root-pointer read completing after the append also sees
  // the new root.
  //
  // The meta page is pinned hot (page 0, touched by every tree open);
  // fetching it under the node latches cannot block on real I/O, and
  // node(350) -> meta(400) is rank-increasing.
  // gistcr-lint: allow(io-under-latch)
  auto meta_or = ctx_.pool->Fetch(MetaView::kMetaPageId);
  GISTCR_RETURN_IF_ERROR(meta_or.status());
  PageGuard mg(ctx_.pool, meta_or.value());
  mg.WLatch();

  LogRecord rec;
  rec.type = LogRecordType::kSplit;
  pl.EncodeTo(&rec.payload);
  GISTCR_RETURN_IF_ERROR(ctx_.txns->AppendTxnLog(txn, &rec));
  const Nsn new_nsn = pl.new_nsn != 0 ? pl.new_nsn : rec.lsn;

  for (const IndexEntry& m : pl.moved) {
    const int idx = node.FindByKeyValue(m.key, m.value);
    GISTCR_CHECK(idx >= 0);
    node.RemoveEntry(static_cast<uint16_t>(idx));
  }
  GISTCR_RETURN_IF_ERROR(node.SetBp(pl.orig_bp_after));
  node.set_nsn(new_nsn);
  node.set_rightlink(sib_pid);
  g->view().set_page_lsn(rec.lsn);
  g->frame()->MarkDirty(rec.lsn);

  NodeView sn(sg.view().data());
  sn.Init(sib_pid, pl.level);
  for (const IndexEntry& m : pl.moved) {
    GISTCR_RETURN_IF_ERROR(sn.InsertEntry(m));
  }
  GISTCR_RETURN_IF_ERROR(sn.SetBp(pl.new_bp));
  sn.set_nsn(pl.old_nsn);
  sn.set_rightlink(pl.old_rightlink);
  sg.view().set_page_lsn(rec.lsn);
  sg.frame()->MarkDirty(rec.lsn);

  Slice new_bp(pl.new_bp);
  ctx_.preds->ReplicateOnSplit(old_root, sib_pid,
                               [&](const PredAttachment& a) {
                                 return PredConsistentWithBp(new_bp, a);
                               });
  ctx_.locks->ReplicateSharedHolders(LockName{LockSpace::kNode, old_root},
                                     LockName{LockSpace::kNode, sib_pid});

  // New root above both.
  RootChangePayload rp;
  rp.meta_page = MetaView::kMetaPageId;
  rp.index_id = opts_.index_id;
  rp.old_root = old_root;
  rp.new_root = new_root;
  rp.new_root_level = static_cast<uint16_t>(pl.level + 1);
  rp.root_entries.push_back({pl.orig_bp_after, old_root, kInvalidTxnId});
  rp.root_entries.push_back({pl.new_bp, sib_pid, kInvalidTxnId});
  rp.root_bp = ext_->Union(pl.orig_bp_after, pl.new_bp);

  LogRecord rrec;
  rrec.type = LogRecordType::kRootChange;
  rp.EncodeTo(&rrec.payload);
  GISTCR_RETURN_IF_ERROR(ctx_.txns->AppendTxnLog(txn, &rrec));

  NodeView rn(rg.view().data());
  rn.Init(new_root, rp.new_root_level);
  for (const IndexEntry& e : rp.root_entries) {
    GISTCR_RETURN_IF_ERROR(rn.InsertEntry(e));
  }
  GISTCR_RETURN_IF_ERROR(rn.SetBp(rp.root_bp));
  rg.view().set_page_lsn(rrec.lsn);
  rg.frame()->MarkDirty(rrec.lsn);

  // New root built and logged; the meta page still points at the old root
  // but has been X-latched since before the Split record was appended.
  GISTCR_CRASHPOINT("root.before_meta_update");
  if (hooks_.during_root_grow) hooks_.during_root_grow();
  MetaView meta(mg.view().data());
  meta.SetRoot(opts_.index_id, new_root);
  mg.view().set_page_lsn(rrec.lsn);
  mg.frame()->MarkDirty(rrec.lsn);
  return Status::OK();
}

// ---------------------------------------------------------------------
// BP propagation (Figure 4, updateBP)
// ---------------------------------------------------------------------

Status Gist::UpdateBp(Transaction* txn, PageGuard* g, const std::string& bp,
                      std::vector<StackEntry>* stack, size_t ancestors) {
  NodeView node(g->view().data());
  if (node.bp() == Slice(bp)) return Status::OK();
  const std::string old_bp = node.bp().ToString();
  const PageId pid = g->page_id();

  PageGuard parent;
  bool have_parent = false;
  if (ancestors == 0) {
    auto root_or = GetRoot();
    GISTCR_RETURN_IF_ERROR(root_or.status());
    if (root_or.value() != pid) {
      // Root grew during descent: locate the true parent.
      GISTCR_RETURN_IF_ERROR(FindParentExhaustive(pid, &parent));
      have_parent = true;
    }
  } else {
    GISTCR_RETURN_IF_ERROR(
        LatchParentForChild(txn, stack, ancestors - 1, pid, &parent));
    have_parent = true;
  }

  if (!have_parent) {
    // The node is the root: only its own BP needs the update.
    LogRecord rec;
    rec.type = LogRecordType::kParentEntryUpdate;
    ParentEntryUpdatePayload pp;
    pp.child_page = pid;
    pp.parent_page = kInvalidPageId;
    pp.child_value = pid;
    pp.new_bp = bp;
    pp.EncodeTo(&rec.payload);
    GISTCR_RETURN_IF_ERROR(ctx_.txns->AppendTxnLog(txn, &rec));
    GISTCR_RETURN_IF_ERROR(node.SetBp(bp));
    g->view().set_page_lsn(rec.lsn);
    g->frame()->MarkDirty(rec.lsn);
    return Status::OK();
  }

  // Recurse upward first (latches climb; updates apply on unwind, i.e.
  // top-down, which is what makes per-level atomic actions loggable in
  // order — paper sections 6 and 9).
  {
    NodeView pn(parent.view().data());
    const std::string parent_bp = ext_->Union(pn.bp(), bp);
    const size_t parent_ancestors = ancestors == 0 ? 0 : ancestors - 1;
    GISTCR_RETURN_IF_ERROR(
        UpdateBp(txn, &parent, parent_bp, stack, parent_ancestors));
  }

  // Apply this level: one redo-only Parent-Entry-Update covering the
  // child's own BP and its slot in the parent.
  NodeView pn(parent.view().data());
  const int idx = pn.FindByValue(pid);
  GISTCR_CHECK(idx >= 0);
  LogRecord rec;
  rec.type = LogRecordType::kParentEntryUpdate;
  ParentEntryUpdatePayload pp;
  pp.child_page = pid;
  pp.parent_page = parent.page_id();
  pp.child_value = pid;
  pp.new_bp = bp;
  pp.EncodeTo(&rec.payload);
  GISTCR_RETURN_IF_ERROR(ctx_.txns->AppendTxnLog(txn, &rec));
  GISTCR_RETURN_IF_ERROR(pn.SetEntryKey(static_cast<uint16_t>(idx), bp));
  parent.view().set_page_lsn(rec.lsn);
  parent.frame()->MarkDirty(rec.lsn);
  GISTCR_RETURN_IF_ERROR(node.SetBp(bp));
  g->view().set_page_lsn(rec.lsn);
  g->frame()->MarkDirty(rec.lsn);

  // Percolation (section 4.3 case 2): predicates on the parent that are
  // consistent with the child's expanded BP but were not with the old one
  // must come down to the child.
  Slice new_bp_slice(bp);
  Slice old_bp_slice(old_bp);
  ctx_.preds->Percolate(parent.page_id(), pid, [&](const PredAttachment& a) {
    if (a.kind == PredKind::kInsert) return false;  // leaf-only kind
    return ext_->Consistent(new_bp_slice, a.pred) &&
           (old_bp_slice.empty() ||
            !ext_->Consistent(old_bp_slice, a.pred));
  });
  return Status::OK();
}

// ---------------------------------------------------------------------
// Insert driver (paper section 6)
// ---------------------------------------------------------------------

Status Gist::ChaseToEntry(Transaction* txn, PageId start, Nsn memorized,
                          Slice key, uint64_t value, PageGuard* out,
                          int* slot) {
  (void)txn;
  PageId pid = start;
  for (;;) {
    PageGuard g;
    GISTCR_RETURN_IF_ERROR(FetchLatched(pid, /*exclusive=*/true, &g));
    NodeView node(g.view().data());
    const int idx = node.FindByKeyValue(key, value);
    if (idx >= 0) {
      *out = std::move(g);
      *slot = idx;
      return Status::OK();
    }
    const PageId rl = node.rightlink();
    const bool split_since = node.nsn() > memorized;
    g.Drop();
    if (!split_since || rl == kInvalidPageId) {
      return Status::Corruption("leaf entry lost while re-positioning");
    }
    stats_.rightlink_follows.Add(1);
    obs::BumpRestarts();
    pid = rl;
  }
}

Status Gist::LeafGc(Transaction* txn, PageGuard* leaf, uint64_t* removed) {
  NodeView node(leaf->view().data());
  const Lsn oldest = ctx_.txns->OldestActiveFirstLsn();
  const bool all_committed =
      oldest != kInvalidLsn && leaf->view().page_lsn() < oldest;
  GarbageCollectionPayload pl;
  pl.page = leaf->page_id();
  for (uint16_t i = 0; i < node.count(); i++) {
    const TxnId d = node.entry_del_txn(i);
    if (d == kInvalidTxnId) continue;
    // Commit_LSN fast path (section 7.1 footnote 11): if the page was last
    // touched before the oldest active transaction began, every mark on it
    // belongs to a terminated transaction. Snapshot readers extend the
    // entry's lifetime past the deleter's commit: physical removal must
    // also wait until no active snapshot can still see it (section 14).
    if (all_committed || !ctx_.txns->IsActive(d)) {
      if (ctx_.mvcc != nullptr &&
          !ctx_.mvcc->SafeToReclaim(node.entry_value(i), d)) {
        continue;
      }
      pl.removed.push_back(node.GetEntry(i));
    }
  }
  if (pl.removed.empty()) return Status::OK();

  const Lsn nta = ctx_.txns->NtaBegin(txn);
  LogRecord rec;
  rec.type = LogRecordType::kGarbageCollection;
  pl.EncodeTo(&rec.payload);
  GISTCR_RETURN_IF_ERROR(ctx_.txns->AppendTxnLog(txn, &rec));
  for (const IndexEntry& e : pl.removed) {
    const int idx = node.FindByKeyValue(e.key, e.value);
    GISTCR_CHECK(idx >= 0);
    node.RemoveEntry(static_cast<uint16_t>(idx));
  }
  leaf->view().set_page_lsn(rec.lsn);
  leaf->frame()->MarkDirty(rec.lsn);
  // GC removal applied and logged; the NTA-End committing it is not.
  GISTCR_CRASHPOINT("gc.before_nta_end");
  GISTCR_RETURN_IF_ERROR(ctx_.txns->NtaEnd(txn, nta));
  *removed += pl.removed.size();
  stats_.gc_removed.Add(pl.removed.size());
  return Status::OK();
}

Status Gist::Insert(Transaction* txn, Slice key, Rid rid) {
  GISTCR_TRACE_SCOPE("gist.insert");
  obs::TreeScope tree_scope;
  stats_.inserts.Add(1);
  if (key.size() > NodeView::kMaxKeySize) {
    return Status::InvalidArgument("key too large");
  }
  const uint64_t op_id = txn->NextOpId();

  // Phase 1 (section 6): the data record is X-locked before the tree
  // insertion is initiated. Reentrant if the Database facade already did.
  GISTCR_RETURN_IF_ERROR(
      ctx_.locks->Lock(txn->id(), LockName{LockSpace::kRecord, rid.Pack()},
                       LockMode::kExclusive, /*wait=*/true));

  // Pure predicate locking (ablation): verify against the global table and
  // register the key before touching the tree (section 4.2).
  if (opts_.pred_mode == PredicateMode::kGlobal) {
    for (;;) {
      auto conflicts = ctx_.preds->FindConflicts(
          PredicateManager::kGlobalTable, txn->id(),
          [&](const PredAttachment& a) {
            return a.kind != PredKind::kInsert &&
                   ext_->Consistent(key, a.pred);
          });
      if (conflicts.empty()) {
        ctx_.preds->Attach(PredicateManager::kGlobalTable, txn->id(), op_id,
                           PredKind::kInsert, key);
        break;
      }
      stats_.predicate_waits.Add(1);
      for (TxnId owner : conflicts) {
        GISTCR_RETURN_IF_ERROR(ctx_.locks->WaitForTxn(txn->id(), owner));
      }
    }
  }

  TreeLatch tree(&tree_latch_, /*exclusive=*/true,
                 opts_.protocol == ConcurrencyProtocol::kCoarse);
  return InsertCore(txn, key, rid, op_id, &tree);
}

Status Gist::InsertCore(Transaction* txn, Slice key, Rid rid, uint64_t op_id,
                        TreeLatch* tree) {
  std::vector<StackEntry> stack;
  std::vector<PageId> extra_signal_locks;  // non-final leaves visited
  PageGuard leaf;
  GISTCR_RETURN_IF_ERROR(LocateLeaf(txn, key, &stack, &leaf));
  if (hooks_.after_locate_leaf) hooks_.after_locate_leaf(leaf.page_id());

  IndexEntry entry;
  entry.key = key.ToString();
  entry.value = rid.Pack();

  // Phase 3: make room — first by collecting committed-deleted entries,
  // then by splitting (possibly recursively).
  {
    NodeView node(leaf.view().data());
    if (NodeIsFull(node, entry)) {
      uint64_t removed = 0;
      GISTCR_RETURN_IF_ERROR(LeafGc(txn, &leaf, &removed));
    }
  }
  for (int guard = 0; guard < 64; guard++) {
    NodeView node(leaf.view().data());
    if (!NodeIsFull(node, entry)) break;
    if (node.count() < 2) {
      return Status::InvalidArgument("entry does not fit on an empty node");
    }
    GISTCR_RETURN_IF_ERROR(SplitNode(txn, &leaf, &stack, stack.size()));
    // The split distributed only the pre-existing entries (Figure 4); the
    // new key belongs on whichever side has the lower insert penalty —
    // the same placement [HNP95]'s split-with-new-entry produces, and what
    // the paper's Split record ("newly inserted key and which page it
    // belongs on") encodes. Hop right when the fresh sibling wins;
    // otherwise the original leaf (which now has room) takes it.
    NodeView after(leaf.view().data());
    if (after.rightlink() != kInvalidPageId) {
      const double here = ext_->Penalty(after.bp(), key);
      PageGuard sib;
      GISTCR_RETURN_IF_ERROR(SignalLock(txn, after.rightlink()));
      // Post-split sibling hop: rightward latch coupling onto the freshly
      // split-off sibling. gistcr-lint: allow(io-under-latch)
      GISTCR_RETURN_IF_ERROR(FetchLatched(after.rightlink(),
                                          /*exclusive=*/true, &sib));
      NodeView sn(sib.view().data());
      const double there = ext_->Penalty(sn.bp(), key);
      if (!NodeIsFull(sn, entry) && there < here) {
        const PageId old = leaf.page_id();
        leaf.Drop();
        extra_signal_locks.push_back(old);  // release at end of operation
        leaf = std::move(sib);
      } else {
        const PageId spid = sib.page_id();
        sib.Drop();
        SignalUnlock(txn, spid);
      }
    }
  }
  {
    NodeView node(leaf.view().data());
    if (NodeIsFull(node, entry)) {
      return Status::NoSpace("leaf still full after splits");
    }
  }

  // Phase 4: expand BPs along the path so the new key is visible from the
  // root (top-down application with percolation).
  {
    NodeView node(leaf.view().data());
    if (node.bp().empty() || !ext_->Contains(node.bp(), key)) {
      const std::string union_bp = ext_->Union(node.bp(), key);
      GISTCR_RETURN_IF_ERROR(
          UpdateBp(txn, &leaf, union_bp, &stack, stack.size()));
    }
  }

  // Phase 5: the content change itself, logged in the transaction (this is
  // what rollback logically undoes).
  {
    NodeView node(leaf.view().data());
    // Leaf chosen and room made (splits/BP updates possibly durable via
    // their NTAs), but the Add-Leaf-Entry is not yet logged.
    GISTCR_CRASHPOINT("insert.before_leaf_log");
    LogRecord rec;
    rec.type = LogRecordType::kAddLeafEntry;
    EntryOpPayload pl;
    pl.page = leaf.page_id();
    pl.nsn = node.nsn();
    pl.entry = entry;
    pl.EncodeTo(&rec.payload);
    GISTCR_RETURN_IF_ERROR(ctx_.txns->AppendTxnLog(txn, &rec));
    GISTCR_RETURN_IF_ERROR(node.InsertEntry(entry));
    leaf.view().set_page_lsn(rec.lsn);
    leaf.frame()->MarkDirty(rec.lsn);
    // Version-store shadow of the Add-Leaf-Entry (DESIGN.md section 14):
    // a pending record commit-stamping later makes the entry visible to
    // snapshots; rollback clears it via RecoveryManager::UndoRecord.
    if (ctx_.mvcc != nullptr) ctx_.mvcc->NoteInsert(entry.value, txn->id());
    // Entry applied and logged inside a still-running transaction.
    GISTCR_CRASHPOINT("insert.after_leaf_apply");
  }

  // Phase 6: check the predicates attached to the leaf; block until
  // conflicting scan transactions terminate. Our own insert predicate is
  // attached first so later scans queue fairly behind us (section 10.3).
  if (opts_.pred_mode == PredicateMode::kHybrid) {
    for (;;) {
      NodeView node(leaf.view().data());
      auto conflicts = ctx_.preds->AttachAndFindConflicts(
          leaf.page_id(), txn->id(), op_id, PredKind::kInsert, key,
          [&](const PredAttachment& a) {
            return a.kind != PredKind::kInsert &&
                   ext_->Consistent(key, a.pred);
          });
      if (conflicts.empty()) break;
      stats_.predicate_waits.Add(1);
      const PageId lpid = leaf.page_id();
      const Nsn mem = node.nsn();
      leaf.Drop();
      tree->Release();
      for (TxnId owner : conflicts) {
        GISTCR_RETURN_IF_ERROR(ctx_.locks->WaitForTxn(txn->id(), owner));
      }
      tree->Acquire();
      int slot;
      GISTCR_RETURN_IF_ERROR(
          ChaseToEntry(txn, lpid, mem, key, rid.Pack(), &leaf, &slot));
      // Loop: re-check the predicate list of wherever the entry lives now.
    }
  }

  const PageId final_leaf = leaf.page_id();
  leaf.Drop();

  // Release ancestor signaling locks; the target leaf's stays until end of
  // transaction (section 7.2: it anchors the recovery-relevant link chain).
  for (const StackEntry& se : stack) {
    if (se.page != final_leaf) SignalUnlock(txn, se.page);
  }
  for (PageId pid : extra_signal_locks) {
    if (pid != final_leaf) SignalUnlock(txn, pid);
  }
  // Drop the insert predicate: once the insert has finished, later scans
  // serialize against the physically present entry's record lock.
  ctx_.preds->DetachOp(txn->id(), op_id);
  return Status::OK();
}

Status Gist::InsertUnique(Transaction* txn, Slice key, Rid rid) {
  const uint64_t op_id = txn->NextOpId();
  const std::string eq = ext_->EqQuery(key);

  // Search phase (section 8): S-lock any existing duplicate's data record
  // so the error is repeatable; leave "= key" probe predicates on every
  // visited node so racing unique inserts of the same value deadlock
  // rather than both succeeding.
  std::vector<SearchResult> results;
  Status st = SearchInternal(txn, eq, PredKind::kUniqueProbe,
                             /*attach=*/true, /*lock_rids=*/true, op_id,
                             &results);
  if (!st.ok()) {
    return st;
  }
  for (const SearchResult& r : results) {
    if (ext_->KeyEquals(r.key, key)) {
      // Duplicate found: the S lock on its record makes the error
      // repeatable; the probe predicates are no longer needed.
      ctx_.preds->DetachOp(txn->id(), op_id);
      (void)r;
      return Status::DuplicateKey("unique index " +
                                  std::to_string(opts_.index_id));
    }
  }

  stats_.inserts.Add(1);
  GISTCR_RETURN_IF_ERROR(
      ctx_.locks->Lock(txn->id(), LockName{LockSpace::kRecord, rid.Pack()},
                       LockMode::kExclusive, /*wait=*/true));
  TreeLatch tree(&tree_latch_, /*exclusive=*/true,
                 opts_.protocol == ConcurrencyProtocol::kCoarse);
  st = InsertCore(txn, key, rid, op_id, &tree);
  if (st.ok()) {
    // Releases the probe predicates left by the search phase (the insert
    // predicate shares the op id and was released by InsertCore already).
    ctx_.preds->DetachOp(txn->id(), op_id);
  }
  return st;
}

}  // namespace gistcr
