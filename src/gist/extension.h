#ifndef GISTCR_GIST_EXTENSION_H_
#define GISTCR_GIST_EXTENSION_H_

#include <string>
#include <vector>

#include "common/entry.h"
#include "util/slice.h"

namespace gistcr {

/// The access-method extension interface of [HNP95] as used by this paper:
/// the GiST core implements search, insert, delete, split propagation,
/// logging and locking generically; the extension supplies the key
/// semantics. Predicates (bounding predicates of internal entries, leaf
/// keys, and attached predicate locks) share one serialized domain; search
/// queries are a second serialized domain. The same consistent() drives
/// tree navigation *and* predicate-lock conflict checking (paper section 6:
/// "the function consistent(), which is used to detect conflicting
/// predicates, is the same user-supplied function ... used by the search
/// operation to navigate within the tree").
///
/// Implementations must be thread-safe (stateless or immutable).
class GistExtension {
 public:
  virtual ~GistExtension() = default;

  /// May a key under predicate \p pred satisfy \p query? Must not miss
  /// (false negatives are incorrect); false positives only cost work.
  virtual bool Consistent(Slice pred, Slice query) const = 0;

  /// Domain-specific cost of inserting \p key into the subtree bounded by
  /// \p bp (typically: how much bp must grow). Lower is better.
  virtual double Penalty(Slice bp, Slice key) const = 0;

  /// Smallest predicate covering both \p a and \p b. Either may be empty
  /// (an empty predicate covers nothing and unions to the other side).
  virtual std::string Union(Slice a, Slice b) const = 0;

  /// True if \p bp already covers \p pred (no expansion needed). Drives
  /// the termination test of upward BP propagation (paper section 6 step 4)
  /// and BP-shrink checks.
  virtual bool Contains(Slice bp, Slice pred) const = 0;

  /// Distributes \p entries between the original node (false) and the new
  /// right sibling (true). Must put at least one entry on each side.
  virtual void PickSplit(const std::vector<IndexEntry>& entries,
                         std::vector<bool>* to_right) const = 0;

  /// A query matching exactly the keys equal to \p key — used by delete
  /// (locate the victim entry) and unique-index probes (paper section 8).
  virtual std::string EqQuery(Slice key) const = 0;

  /// Exact key equality. Predicate encodings are canonical in both bundled
  /// extensions, so byte equality is the default.
  virtual bool KeyEquals(Slice a, Slice b) const { return a == b; }

  /// Human-readable predicate rendering for debugging/tracing.
  virtual std::string Describe(Slice pred) const {
    return "<" + std::to_string(pred.size()) + " bytes>";
  }

  /// Union of all live entry predicates plus an optional extra predicate.
  /// Default folds Union; extensions may specialize.
  virtual std::string UnionAll(const std::vector<IndexEntry>& entries,
                               Slice extra) const {
    std::string acc = extra.ToString();
    for (const IndexEntry& e : entries) {
      acc = Union(acc, e.key);
    }
    return acc;
  }
};

}  // namespace gistcr

#endif  // GISTCR_GIST_EXTENSION_H_
