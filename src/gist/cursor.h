#ifndef GISTCR_GIST_CURSOR_H_
#define GISTCR_GIST_CURSOR_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "gist/gist.h"

namespace gistcr {

/// Incremental search cursor: the depth-first traversal of Figure 3
/// surfaced one qualifying entry at a time instead of as a complete result
/// set. This is the access pattern the paper's savepoint discussion
/// assumes (section 10.2): the cursor's position *is* its traversal stack,
/// so establishing a savepoint snapshots the stack (and keeps the
/// signaling locks of the stacked pointers alive), and rolling back to it
/// restores the position exactly.
///
/// Locking matches Search: result RIDs are S-locked (2PL), and at
/// repeatable read the search predicate is attached to each node as it is
/// visited — so the predicate lock range expands gradually with cursor
/// progress, one of the properties the hybrid scheme trades away relative
/// to key-range locking (section 4.3) but regains for unvisited subtrees.
///
/// Single-threaded use (one cursor per transaction thread); the cursor
/// holds no latches between Next() calls, only signaling locks on stacked
/// node pointers.
class GistCursor {
 public:
  /// An opaque saved position (paper section 10.2: "record the
  /// then-current stack"). Holding one keeps the signaling locks of its
  /// stacked pointers acquired, so the referenced nodes cannot be retired
  /// while a rollback could revive the position.
  class SavedPosition {
   public:
    SavedPosition() = default;
    ~SavedPosition();
    SavedPosition(SavedPosition&&) noexcept;
    SavedPosition& operator=(SavedPosition&&) noexcept;
    GISTCR_DISALLOW_COPY_AND_ASSIGN(SavedPosition);

   private:
    friend class GistCursor;
    void Release();

    Gist* gist_ = nullptr;
    TxnId txn_id_ = kInvalidTxnId;  ///< Id only: release must stay safe
                                    ///  even after the transaction object
                                    ///  is gone (locks are idempotently
                                    ///  released at end of transaction).
    /// Snapshot cursors hold no signaling locks (the active snapshot
    /// itself defers node retirement), so Release has nothing to drop.
    bool snapshot_ = false;
    std::vector<Gist::StackEntry> stack_;
    std::vector<uint64_t> seen_;
    std::deque<SearchResult> pending_;
  };

  /// The cursor borrows gist/txn; both must outlive it. \p query is the
  /// extension-encoded search predicate.
  GistCursor(Gist* gist, Transaction* txn, Slice query);
  ~GistCursor();
  GISTCR_DISALLOW_COPY_AND_ASSIGN(GistCursor);

  /// Positions at the root. Must be called once before Next().
  Status Open();

  /// Fetches the next qualifying entry. Sets *done=true (with no result)
  /// when the traversal is exhausted. Blocks on conflicting record locks
  /// exactly like Search.
  Status Next(SearchResult* out, bool* done);

  /// Snapshot the position for a savepoint (section 10.2). The snapshot
  /// pins the stacked nodes' signaling locks until released or restored.
  StatusOr<SavedPosition> Save();

  /// Rolls the cursor position back to \p pos (consumes it). Entries
  /// returned since the save will be returned again.
  Status Restore(SavedPosition pos);

 private:
  Status FillPending();

  Gist* gist_;
  Transaction* txn_;
  const TxnId txn_id_;  ///< For teardown after the transaction ended.
  /// Snapshot-read cursor (DESIGN.md section 14): traverses via the
  /// Visible() filter, takes no locks of any kind.
  const bool snapshot_;
  const std::string query_;
  const uint64_t op_id_;
  bool open_ = false;
  std::vector<Gist::StackEntry> stack_;
  std::unordered_set<uint64_t> seen_;
  std::deque<SearchResult> pending_;
};

}  // namespace gistcr

#endif  // GISTCR_GIST_CURSOR_H_
