#ifndef GISTCR_CLIENT_CLIENT_H_
#define GISTCR_CLIENT_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/socket.h"
#include "net/wire.h"
#include "txn/transaction.h"

namespace gistcr {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Dial attempts per (re)connect; each failure backs off exponentially
  /// from backoff_base_ms, doubling up to backoff_max_ms.
  uint32_t connect_attempts = 5;
  uint32_t backoff_base_ms = 20;
  uint32_t backoff_max_ms = 1000;
  /// Transparently re-dial and retry a call once after a transport failure
  /// — only when no transaction is open (an open transaction died with the
  /// connection and must surface as an error).
  bool auto_reconnect = true;
};

/// One qualifying entry streamed back by a remote search.
struct RemoteResult {
  std::string key;  ///< extension-encoded leaf predicate
  uint64_t rid = 0;
  std::string record;  ///< only filled when with_records was requested
};

/// Blocking client for the gistcr wire protocol (DESIGN.md section 9).
/// Not thread-safe: one Client per thread, mirroring the engine's
/// one-thread-per-transaction discipline. Every call sends one request
/// frame and reads frames until its reply is complete; ExecuteBatch
/// pipelines many requests before reading any reply.
class Client {
 public:
  explicit Client(ClientOptions opts);
  ~Client() = default;
  GISTCR_DISALLOW_COPY_AND_ASSIGN(Client);

  /// Dials (with backoff). A default-constructed client may also skip this
  /// and let the first call connect lazily.
  Status Connect();
  void Close() { sock_.Close(); }
  bool connected() const { return sock_.valid(); }
  bool txn_open() const { return txn_open_; }

  Status Ping();
  StatusOr<TxnId> Begin(
      IsolationLevel iso = IsolationLevel::kRepeatableRead);
  Status Commit();
  Status Abort();
  /// Returns the packed Rid of the inserted record.
  StatusOr<uint64_t> Insert(uint32_t index_id, Slice key, Slice record,
                            bool unique = false);
  Status Delete(uint32_t index_id, Slice key, uint64_t packed_rid);
  StatusOr<std::vector<RemoteResult>> Search(uint32_t index_id, Slice query,
                                             bool with_records = false,
                                             uint32_t batch_size = 0);
  /// Server metrics dump: JSON (Database::DumpMetrics) by default, or
  /// Prometheus text exposition format when \p prometheus is set.
  StatusOr<std::string> Stats(bool prometheus = false);

  /// Live introspection view (kInspect): slow-op ring, lock wait-for
  /// edges, buffer-pool shard occupancy or WAL flusher depth, as JSON.
  StatusOr<std::string> Inspect(net::InspectKind kind);

  /// One pipelined operation. Exactly the subset of the protocol where
  /// responses are cheap to buffer.
  struct BatchOp {
    enum class Kind : uint8_t { kInsert, kDelete, kSearch, kPing };
    Kind kind = Kind::kPing;
    uint32_t index_id = 0;
    std::string key;     ///< insert/delete key, or search query
    std::string record;  ///< insert payload
    uint64_t rid = 0;    ///< delete target
    bool unique = false;
    bool with_records = false;
    uint32_t batch_size = 0;
  };
  struct BatchResult {
    Status status = Status::OK();
    uint64_t rid = 0;                   ///< insert
    std::vector<RemoteResult> results;  ///< search
  };

  /// Writes every request frame back-to-back, then reads all replies —
  /// one round trip of latency for the whole batch instead of one per op.
  /// Returns non-OK only on transport failure; per-op errors land in the
  /// corresponding BatchResult.
  Status ExecuteBatch(const std::vector<BatchOp>& ops,
                      std::vector<BatchResult>* results);

 private:
  Status EnsureConnected();
  Status Dial();
  Status SendFrame(net::Opcode op, uint8_t flags, uint64_t request_id,
                   Slice payload);
  Status ReadFrame(net::Frame* out);
  /// Reads frames until the reply for \p request_id with a terminal opcode
  /// arrives; search batches accumulate into \p results.
  Status ReadReply(uint64_t request_id, net::Frame* terminal,
                   std::vector<RemoteResult>* results, bool with_records);
  /// Send + ReadReply with one transparent reconnect-and-retry (see
  /// ClientOptions::auto_reconnect).
  Status Call(net::Opcode op, uint8_t flags, Slice payload,
              net::Frame* terminal, std::vector<RemoteResult>* results,
              bool with_records);
  Status StatusFromErrorFrame(const net::Frame& f);
  void OnTransportError();

  ClientOptions opts_;
  net::Socket sock_;
  net::FrameReader reader_{net::kMaxResponsePayload};
  uint64_t next_request_id_ = 1;
  bool txn_open_ = false;
};

}  // namespace gistcr

#endif  // GISTCR_CLIENT_CLIENT_H_
