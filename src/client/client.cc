#include "client/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/coding.h"

namespace gistcr {

using net::ErrorCode;
using net::Frame;
using net::Opcode;

Client::Client(ClientOptions opts) : opts_(std::move(opts)) {}

Status Client::Dial() {
  uint32_t backoff = opts_.backoff_base_ms;
  Status last = Status::IOError("no connect attempt made");
  const uint32_t attempts =
      opts_.connect_attempts == 0 ? 1 : opts_.connect_attempts;
  for (uint32_t i = 0; i < attempts; i++) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min(backoff * 2, opts_.backoff_max_ms);
    }
    net::Socket s;
    last = net::TcpConnect(opts_.host, opts_.port, &s);
    if (last.ok()) {
      sock_ = std::move(s);
      reader_ = net::FrameReader(net::kMaxResponsePayload);
      return Status::OK();
    }
  }
  return last;
}

Status Client::Connect() { return EnsureConnected(); }

Status Client::EnsureConnected() {
  if (sock_.valid()) return Status::OK();
  return Dial();
}

void Client::OnTransportError() {
  sock_.Close();
  reader_ = net::FrameReader(net::kMaxResponsePayload);
}

Status Client::SendFrame(Opcode op, uint8_t flags, uint64_t request_id,
                         Slice payload) {
  Frame f;
  f.opcode = op;
  f.flags = flags;
  f.request_id = request_id;
  f.payload.assign(payload.data(), payload.size());
  std::string wire;
  net::EncodeFrame(f, &wire);
  return net::WriteFully(sock_.fd(), wire.data(), wire.size());
}

Status Client::ReadFrame(Frame* out) {
  char buf[64 * 1024];
  while (true) {
    switch (reader_.Next(out)) {
      case net::FrameReader::Result::kFrame:
        return Status::OK();
      case net::FrameReader::Result::kNeedMore:
        break;
      default:
        return Status::Corruption("malformed response frame");
    }
    size_t n = 0;
    GISTCR_RETURN_IF_ERROR(net::ReadSome(sock_.fd(), buf, sizeof(buf), &n));
    if (n == 0) return Status::IOError("connection closed by server");
    reader_.Feed(buf, n);
  }
}

Status Client::StatusFromErrorFrame(const Frame& f) {
  ErrorCode code;
  bool txn_aborted;
  std::string msg;
  if (!net::DecodeErrorPayload(f.payload, &code, &txn_aborted, &msg)) {
    return Status::Corruption("undecodable error frame");
  }
  if (txn_aborted) txn_open_ = false;
  return net::StatusFromError(code, msg);
}

namespace {

bool DecodeBatchEntries(const Frame& f, bool with_records,
                        std::vector<RemoteResult>* results) {
  Decoder dec(f.payload);
  uint32_t count;
  if (!dec.GetFixed32(&count)) return false;
  for (uint32_t i = 0; i < count; i++) {
    RemoteResult r;
    if (!dec.GetLengthPrefixed(&r.key)) return false;
    if (!dec.GetFixed64(&r.rid)) return false;
    if (with_records && !dec.GetLengthPrefixed(&r.record)) return false;
    results->push_back(std::move(r));
  }
  return true;
}

}  // namespace

Status Client::ReadReply(uint64_t request_id, Frame* terminal,
                         std::vector<RemoteResult>* results,
                         bool with_records) {
  while (true) {
    Frame f;
    GISTCR_RETURN_IF_ERROR(ReadFrame(&f));
    if (f.request_id != request_id) {
      return Status::Corruption("response for unexpected request id");
    }
    if (f.opcode == Opcode::kSearchBatch) {
      if (results == nullptr ||
          !DecodeBatchEntries(f, with_records, results)) {
        return Status::Corruption("undecodable search batch");
      }
      continue;
    }
    *terminal = std::move(f);
    return Status::OK();
  }
}

Status Client::Call(Opcode op, uint8_t flags, Slice payload, Frame* terminal,
                    std::vector<RemoteResult>* results, bool with_records) {
  for (int attempt = 0;; attempt++) {
    GISTCR_RETURN_IF_ERROR(EnsureConnected());
    const uint64_t id = next_request_id_++;
    Status st = SendFrame(op, flags, id, payload);
    if (st.ok()) {
      if (results != nullptr) results->clear();
      st = ReadReply(id, terminal, results, with_records);
      if (st.ok()) return st;
    }
    // Transport failure: the connection (and any open transaction with
    // it) is gone. A lost transaction must surface — the server rolled it
    // back — so only transaction-less calls retry transparently.
    OnTransportError();
    if (txn_open_) {
      txn_open_ = false;
      return Status::IOError(
          "connection lost; open transaction aborted by server (" +
          st.ToString() + ")");
    }
    if (!opts_.auto_reconnect || attempt >= 1) return st;
  }
}

Status Client::Ping() {
  Frame reply;
  GISTCR_RETURN_IF_ERROR(
      Call(Opcode::kPing, 0, Slice(), &reply, nullptr, false));
  if (reply.opcode == Opcode::kError) return StatusFromErrorFrame(reply);
  if (reply.opcode != Opcode::kPong) return Status::Corruption("want pong");
  return Status::OK();
}

StatusOr<TxnId> Client::Begin(IsolationLevel iso) {
  if (txn_open_) {
    return Status::InvalidArgument("transaction already open");
  }
  std::string payload;
  PutFixed16(&payload, iso == IsolationLevel::kReadCommitted ? 0
                       : iso == IsolationLevel::kSnapshot    ? 2
                                                             : 1);
  Frame reply;
  GISTCR_RETURN_IF_ERROR(
      Call(Opcode::kBegin, 0, payload, &reply, nullptr, false));
  if (reply.opcode == Opcode::kError) return StatusFromErrorFrame(reply);
  Decoder dec(reply.payload);
  uint64_t txn_id;
  if (reply.opcode != Opcode::kOk || !dec.GetFixed64(&txn_id)) {
    return Status::Corruption("bad begin reply");
  }
  txn_open_ = true;
  return static_cast<TxnId>(txn_id);
}

Status Client::Commit() {
  Frame reply;
  GISTCR_RETURN_IF_ERROR(
      Call(Opcode::kCommit, 0, Slice(), &reply, nullptr, false));
  if (reply.opcode == Opcode::kError) return StatusFromErrorFrame(reply);
  txn_open_ = false;
  return Status::OK();
}

Status Client::Abort() {
  Frame reply;
  GISTCR_RETURN_IF_ERROR(
      Call(Opcode::kAbort, 0, Slice(), &reply, nullptr, false));
  if (reply.opcode == Opcode::kError) return StatusFromErrorFrame(reply);
  txn_open_ = false;
  return Status::OK();
}

namespace {

void EncodeInsertPayload(uint32_t index_id, Slice key, Slice record,
                         bool unique, std::string* out) {
  PutFixed32(out, index_id);
  PutLengthPrefixed(out, key);
  PutLengthPrefixed(out, record);
  PutFixed16(out, unique ? 1 : 0);
}

void EncodeDeletePayload(uint32_t index_id, Slice key, uint64_t rid,
                         std::string* out) {
  PutFixed32(out, index_id);
  PutLengthPrefixed(out, key);
  PutFixed64(out, rid);
}

void EncodeSearchPayload(uint32_t index_id, Slice query, uint32_t batch_size,
                         std::string* out) {
  PutFixed32(out, index_id);
  PutLengthPrefixed(out, query);
  PutFixed32(out, batch_size);
}

}  // namespace

StatusOr<uint64_t> Client::Insert(uint32_t index_id, Slice key, Slice record,
                                  bool unique) {
  std::string payload;
  EncodeInsertPayload(index_id, key, record, unique, &payload);
  Frame reply;
  GISTCR_RETURN_IF_ERROR(
      Call(Opcode::kInsert, 0, payload, &reply, nullptr, false));
  if (reply.opcode == Opcode::kError) return StatusFromErrorFrame(reply);
  Decoder dec(reply.payload);
  uint64_t rid;
  if (reply.opcode != Opcode::kOk || !dec.GetFixed64(&rid)) {
    return Status::Corruption("bad insert reply");
  }
  return rid;
}

Status Client::Delete(uint32_t index_id, Slice key, uint64_t packed_rid) {
  std::string payload;
  EncodeDeletePayload(index_id, key, packed_rid, &payload);
  Frame reply;
  GISTCR_RETURN_IF_ERROR(
      Call(Opcode::kDelete, 0, payload, &reply, nullptr, false));
  if (reply.opcode == Opcode::kError) return StatusFromErrorFrame(reply);
  return Status::OK();
}

StatusOr<std::vector<RemoteResult>> Client::Search(uint32_t index_id,
                                                   Slice query,
                                                   bool with_records,
                                                   uint32_t batch_size) {
  std::string payload;
  EncodeSearchPayload(index_id, query, batch_size, &payload);
  std::vector<RemoteResult> results;
  Frame reply;
  GISTCR_RETURN_IF_ERROR(
      Call(Opcode::kSearch, with_records ? net::kFlagWithRecords : 0,
           payload, &reply, &results, with_records));
  if (reply.opcode == Opcode::kError) return StatusFromErrorFrame(reply);
  if (reply.opcode != Opcode::kSearchDone) {
    return Status::Corruption("search stream ended without done frame");
  }
  Decoder dec(reply.payload);
  uint64_t total;
  if (!dec.GetFixed64(&total) || total != results.size()) {
    return Status::Corruption("search result count mismatch");
  }
  return results;
}

StatusOr<std::string> Client::Stats(bool prometheus) {
  Frame reply;
  std::string payload;
  if (prometheus) payload.push_back('\x01');
  GISTCR_RETURN_IF_ERROR(
      Call(Opcode::kStats, 0, payload, &reply, nullptr, false));
  if (reply.opcode == Opcode::kError) return StatusFromErrorFrame(reply);
  if (reply.opcode != Opcode::kStatsReply) {
    return Status::Corruption("bad stats reply");
  }
  return reply.payload;
}

StatusOr<std::string> Client::Inspect(net::InspectKind kind) {
  Frame reply;
  std::string payload;
  payload.push_back(static_cast<char>(kind));
  GISTCR_RETURN_IF_ERROR(
      Call(Opcode::kInspect, 0, payload, &reply, nullptr, false));
  if (reply.opcode == Opcode::kError) return StatusFromErrorFrame(reply);
  if (reply.opcode != Opcode::kInspectReply) {
    return Status::Corruption("bad inspect reply");
  }
  return reply.payload;
}

Status Client::ExecuteBatch(const std::vector<BatchOp>& ops,
                            std::vector<BatchResult>* results) {
  results->clear();
  results->resize(ops.size());
  if (ops.empty()) return Status::OK();
  GISTCR_RETURN_IF_ERROR(EnsureConnected());

  // Phase 1: pipeline every request in one write.
  std::string wire;
  std::vector<uint64_t> ids(ops.size());
  for (size_t i = 0; i < ops.size(); i++) {
    const BatchOp& op = ops[i];
    Frame f;
    f.request_id = ids[i] = next_request_id_++;
    switch (op.kind) {
      case BatchOp::Kind::kInsert:
        f.opcode = Opcode::kInsert;
        EncodeInsertPayload(op.index_id, op.key, op.record, op.unique,
                            &f.payload);
        break;
      case BatchOp::Kind::kDelete:
        f.opcode = Opcode::kDelete;
        EncodeDeletePayload(op.index_id, op.key, op.rid, &f.payload);
        break;
      case BatchOp::Kind::kSearch:
        f.opcode = Opcode::kSearch;
        f.flags = op.with_records ? net::kFlagWithRecords : 0;
        EncodeSearchPayload(op.index_id, op.key, op.batch_size, &f.payload);
        break;
      case BatchOp::Kind::kPing:
        f.opcode = Opcode::kPing;
        break;
    }
    net::EncodeFrame(f, &wire);
  }
  Status st = net::WriteFully(sock_.fd(), wire.data(), wire.size());
  if (!st.ok()) {
    // No transparent retry for batches: some requests may already have
    // executed server-side and replaying them would double-apply.
    OnTransportError();
    if (txn_open_) txn_open_ = false;
    return st;
  }

  // Phase 2: collect replies, strictly in request order (the server
  // executes one session's requests sequentially).
  for (size_t i = 0; i < ops.size(); i++) {
    BatchResult& r = (*results)[i];
    Frame reply;
    st = ReadReply(ids[i], &reply, &r.results,
                   ops[i].kind == BatchOp::Kind::kSearch &&
                       ops[i].with_records);
    if (!st.ok()) {
      OnTransportError();
      if (txn_open_) txn_open_ = false;
      return st;
    }
    if (reply.opcode == Opcode::kError) {
      r.status = StatusFromErrorFrame(reply);
      continue;
    }
    if (ops[i].kind == BatchOp::Kind::kInsert) {
      Decoder dec(reply.payload);
      if (!dec.GetFixed64(&r.rid)) {
        r.status = Status::Corruption("bad insert reply");
      }
    }
  }
  return Status::OK();
}

}  // namespace gistcr
