#include "mvcc/mvcc_manager.h"

#include <algorithm>

namespace gistcr {

MvccManager::MvccManager() {
  for (size_t i = 0; i < kNumShards; i++) {
    shards_[i] = std::make_unique<Shard>();
  }
  AttachMetrics(nullptr);
}

void MvccManager::AttachMetrics(obs::MetricsRegistry* reg) {
  reg = obs::MetricsRegistry::OrFallback(reg);
  m_snapshot_begins_ = reg->GetCounter("mvcc.snapshot_begins");
  m_snapshot_reads_ = reg->GetCounter("mvcc.snapshot_reads");
  m_stamped_ = reg->GetCounter("mvcc.versions_stamped");
  m_pruned_ = reg->GetCounter("mvcc.versions_pruned");
  m_retire_deferred_ = reg->GetCounter("mvcc.node_retire_deferred");
  m_chain_length_ = reg->GetHistogram("mvcc.chain_length");
}

void MvccManager::BeginStamping(TxnId txn) {
  MutexLock l(stamping_mu_);
  stamping_[txn] = stamping_seq_++;
}

void MvccManager::CancelStamping(TxnId txn) {
  MutexLock l(stamping_mu_);
  if (stamping_.erase(txn) > 0) stamping_cv_.NotifyAll();
}

void MvccManager::AdvanceDurable(Lsn lsn) {
  {
    // Drain stamping epochs opened before this fan-out: the batch that
    // just landed may contain their Commit records, and the snapshot
    // stamp must not cover a commit whose versions are unstamped. Epochs
    // opened later (seq >= cutoff) belong to records appended after the
    // batch was cut — their commit LSNs exceed \p lsn — so the cutoff
    // both excludes them and bounds the wait.
    MutexLock l(stamping_mu_);
    const uint64_t cutoff = stamping_seq_;
    for (;;) {
      bool older = false;
      for (const auto& [id, seq] : stamping_) {
        (void)id;
        if (seq < cutoff) {
          older = true;
          break;
        }
      }
      if (!older) break;
      stamping_cv_.Wait(stamping_mu_);
    }
  }
  Lsn cur = durable_stamp_.load(std::memory_order_relaxed);
  while (lsn > cur && !durable_stamp_.compare_exchange_weak(
                          cur, lsn, std::memory_order_release,
                          std::memory_order_relaxed)) {
  }
}

Lsn MvccManager::BeginSnapshot(TxnId txn_id) {
  Lsn stamp;
  {
    // Stamp and register in one critical section against the GC horizon
    // reads (Prune holds snap_mu_ across min-active + SnapshotStamp): a
    // snapshot either registers before the horizon scan and pins its
    // history, or reads its stamp after the scan's SnapshotStamp() — in
    // which case everything pruned was already at-or-below its stamp
    // (ancient == visible, pruned delete == invisible: same answers).
    MutexLock l(snap_mu_);
    stamp = SnapshotStamp();
    active_snaps_[txn_id] = stamp;
  }
  m_snapshot_begins_->Add(1);
  return stamp;
}

void MvccManager::EndSnapshot(TxnId txn_id) {
  MutexLock l(snap_mu_);
  active_snaps_.erase(txn_id);
}

Lsn MvccManager::MinActiveSnapshotLocked() const {
  Lsn min = kInvalidLsn;
  for (const auto& [id, stamp] : active_snaps_) {
    (void)id;
    if (min == kInvalidLsn || stamp < min) min = stamp;
  }
  return min;
}

Lsn MvccManager::MinActiveSnapshot() const {
  MutexLock l(snap_mu_);
  return MinActiveSnapshotLocked();
}

bool MvccManager::HasActiveSnapshots() const {
  MutexLock l(snap_mu_);
  return !active_snaps_.empty();
}

void MvccManager::NoteInsert(uint64_t rid, TxnId txn) {
  {
    MutexLock l(pending_mu_);
    pending_[txn].push_back(rid);
  }
  Shard& s = ShardOf(rid);
  MutexLock l(s.mu);
  VersionRecord rec;
  rec.insert_txn = txn;
  s.chains[rid].push_back(rec);
}

void MvccManager::NoteDelete(uint64_t rid, TxnId txn) {
  {
    MutexLock l(pending_mu_);
    pending_[txn].push_back(rid);
  }
  Shard& s = ShardOf(rid);
  MutexLock l(s.mu);
  Chain& chain = s.chains[rid];
  // The live version is the newest record without a delete mark.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (it->delete_txn == kInvalidTxnId) {
      it->delete_txn = txn;
      it->delete_ts = kInvalidLsn;
      return;
    }
  }
  // Entry predates the store (or its live record was pruned as ancient):
  // materialize it with an always-visible insert stamp.
  VersionRecord rec;
  rec.insert_ts = kAncientStamp;
  rec.delete_txn = txn;
  chain.push_back(rec);
}

void MvccManager::StampCommit(TxnId txn, Lsn commit_lsn) {
  std::vector<uint64_t> rids;
  {
    MutexLock l(pending_mu_);
    auto it = pending_.find(txn);
    if (it != pending_.end()) {
      rids = std::move(it->second);
      pending_.erase(it);
    }
  }
  uint64_t stamped = 0;
  for (uint64_t rid : rids) {
    Shard& s = ShardOf(rid);
    MutexLock l(s.mu);
    auto it = s.chains.find(rid);
    if (it == s.chains.end()) continue;
    for (VersionRecord& rec : it->second) {
      if (rec.insert_txn == txn && rec.insert_ts == kInvalidLsn) {
        rec.insert_ts = commit_lsn;
        stamped++;
      }
      if (rec.delete_txn == txn && rec.delete_ts == kInvalidLsn) {
        rec.delete_ts = commit_lsn;
        stamped++;
      }
    }
    m_chain_length_->Record(it->second.size());
  }
  m_stamped_->Add(stamped);
  // Stamps in place: close the epoch so the durable fan-out may publish a
  // snapshot stamp covering this commit. Runs even when the transaction
  // had no pending versions — the epoch was opened unconditionally.
  CancelStamping(txn);
}

void MvccManager::DropAborted(TxnId txn) {
  std::vector<uint64_t> rids;
  {
    MutexLock l(pending_mu_);
    auto it = pending_.find(txn);
    if (it == pending_.end()) return;
    rids = std::move(it->second);
    pending_.erase(it);
  }
  for (uint64_t rid : rids) {
    Shard& s = ShardOf(rid);
    MutexLock l(s.mu);
    auto it = s.chains.find(rid);
    if (it == s.chains.end()) continue;
    Chain& chain = it->second;
    for (VersionRecord& rec : chain) {
      // Rollback re-exposes the entry on the page; clear the mark here too.
      if (rec.delete_txn == txn && rec.delete_ts == kInvalidLsn) {
        rec.delete_txn = kInvalidTxnId;
      }
    }
    chain.erase(std::remove_if(chain.begin(), chain.end(),
                               [txn](const VersionRecord& rec) {
                                 return rec.insert_txn == txn &&
                                        rec.insert_ts == kInvalidLsn;
                               }),
                chain.end());
    if (chain.empty()) s.chains.erase(it);
  }
}

void MvccManager::UndoInsert(uint64_t rid, TxnId txn) {
  Shard& s = ShardOf(rid);
  MutexLock l(s.mu);
  auto it = s.chains.find(rid);
  if (it == s.chains.end()) return;
  Chain& chain = it->second;
  chain.erase(std::remove_if(chain.begin(), chain.end(),
                             [txn](const VersionRecord& rec) {
                               return rec.insert_txn == txn &&
                                      rec.insert_ts == kInvalidLsn;
                             }),
              chain.end());
  if (chain.empty()) s.chains.erase(it);
}

void MvccManager::UndoDelete(uint64_t rid, TxnId txn) {
  Shard& s = ShardOf(rid);
  MutexLock l(s.mu);
  auto it = s.chains.find(rid);
  if (it == s.chains.end()) return;
  for (VersionRecord& rec : it->second) {
    if (rec.delete_txn == txn && rec.delete_ts == kInvalidLsn) {
      rec.delete_txn = kInvalidTxnId;
    }
  }
}

bool MvccManager::Visible(uint64_t rid, TxnId entry_del_txn,
                          Lsn snapshot) const {
  Shard& s = ShardOf(rid);
  MutexLock l(s.mu);
  auto it = s.chains.find(rid);
  if (it == s.chains.end()) {
    // Ancient: the entry's fate was settled before tracking began (or the
    // record was pruned below every snapshot). A live entry is visible; a
    // marked one was deleted long before this snapshot.
    return entry_del_txn == kInvalidTxnId;
  }
  const Chain& chain = it->second;
  if (entry_del_txn == kInvalidTxnId) {
    // Live entry = newest undeleted version.
    for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
      if (rit->delete_txn == kInvalidTxnId) {
        return StampedVisible(rit->insert_ts, snapshot);
      }
    }
    // No undeleted record: a concurrent writer delete-marked the live
    // version after our caller validated its page copy. Judge by the
    // newest record's stamps — the pending (or post-snapshot) delete does
    // not hide it, but its *insert* must still have committed before this
    // snapshot. Returning true unconditionally would expose an insert
    // whose commit raced past our stamp.
    const VersionRecord& newest = chain.back();
    return StampedVisible(newest.insert_ts, snapshot) &&
           !StampedVisible(newest.delete_ts, snapshot);
  }
  // Marked entry: its record carries the matching deleter.
  for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
    if (rit->delete_txn == entry_del_txn) {
      return StampedVisible(rit->insert_ts, snapshot) &&
             !StampedVisible(rit->delete_ts, snapshot);
    }
  }
  return false;  // record pruned => delete committed below every snapshot
}

bool MvccManager::SafeToReclaim(uint64_t rid, TxnId del_txn) const {
  const Lsn min_snap = MinActiveSnapshot();
  Shard& s = ShardOf(rid);
  MutexLock l(s.mu);
  auto it = s.chains.find(rid);
  if (it == s.chains.end()) return true;  // ancient / already pruned
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->delete_txn != del_txn) continue;
    if (rit->delete_ts == kInvalidLsn) return false;  // stamp still pending
    // A future snapshot's stamp is >= the current durable LSN >= this
    // committed stamp, so only currently active snapshots can pin it.
    return min_snap == kInvalidLsn || rit->delete_ts < min_snap;
  }
  return true;
}

bool MvccManager::CanRetireNodes() {
  if (!HasActiveSnapshots()) return true;
  m_retire_deferred_->Add(1);
  return false;
}

size_t MvccManager::Prune() {
  Lsn horizon;
  {
    // Min-active and the no-snapshot fallback stamp are read under
    // snap_mu_, the same mutex BeginSnapshot holds while it stamps and
    // registers — so a concurrent BeginSnapshot either lands in the scan
    // (horizon <= its stamp) or gets a stamp >= the fallback read, and
    // everything pruned answers identically for it (see BeginSnapshot).
    MutexLock l(snap_mu_);
    const Lsn min_snap = MinActiveSnapshotLocked();
    // With no active snapshot, everything committed (hence durable, hence
    // below any future snapshot stamp) is prunable.
    horizon = min_snap != kInvalidLsn ? min_snap : SnapshotStamp() + 1;
  }
  size_t pruned = 0;
  for (size_t i = 0; i < kNumShards; i++) {
    Shard& s = *shards_[i];
    MutexLock l(s.mu);
    for (auto it = s.chains.begin(); it != s.chains.end();) {
      Chain& chain = it->second;
      chain.erase(
          std::remove_if(chain.begin(), chain.end(),
                         [&](const VersionRecord& rec) {
                           if (rec.delete_txn != kInvalidTxnId) {
                             // Superseded version: gone for everyone once
                             // the delete commits below the horizon.
                             if (rec.delete_ts != kInvalidLsn &&
                                 rec.delete_ts < horizon) {
                               pruned++;
                               return true;
                             }
                             return false;
                           }
                           // Live version: becomes "ancient" (missing =>
                           // visible) once its insert is below the horizon.
                           if (rec.insert_ts != kInvalidLsn &&
                               rec.insert_ts < horizon) {
                             pruned++;
                             return true;
                           }
                           return false;
                         }),
          chain.end());
      if (chain.empty()) {
        it = s.chains.erase(it);
      } else {
        ++it;
      }
    }
  }
  m_pruned_->Add(pruned);
  return pruned;
}

size_t MvccManager::StoreSize() const {
  size_t total = 0;
  for (size_t i = 0; i < kNumShards; i++) {
    Shard& s = *shards_[i];
    MutexLock l(s.mu);
    for (const auto& [rid, chain] : s.chains) {
      (void)rid;
      total += chain.size();
    }
  }
  return total;
}

size_t MvccManager::ChainLength(uint64_t rid) const {
  Shard& s = ShardOf(rid);
  MutexLock l(s.mu);
  auto it = s.chains.find(rid);
  return it == s.chains.end() ? 0 : it->second.size();
}

}  // namespace gistcr
