#ifndef GISTCR_MVCC_MVCC_MANAGER_H_
#define GISTCR_MVCC_MVCC_MANAGER_H_

#include <atomic>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "util/macros.h"

namespace gistcr {

/// Multi-version bookkeeping for snapshot reads (DESIGN.md section 14).
///
/// The paper's hybrid protocol makes every Degree-3 search attach predicate
/// locks top-down, so *reads* mutate shared lock-manager state. This
/// subsystem gives read-only transactions a way out: they take a snapshot
/// stamp and filter leaf entries by commit-time visibility, touching zero
/// lock-manager state. Update transactions keep the full 2PL + predicate
/// protocol unchanged.
///
/// **Timestamps are LSNs.** A transaction's commit stamp is the LSN of its
/// Commit log record; a snapshot stamp is the durable LSN the WAL flusher
/// had fanned out when the read-only transaction began. Because the commit
/// path stamps its versions *between* appending the Commit record and
/// forcing the log (TransactionManager::Commit), any reader whose snapshot
/// S covers a commit C (S >= C) must have observed the flush that the
/// stamping preceded — so "stamped and <= S" is exactly "committed before
/// my snapshot", with no extra synchronization on the read side.
///
/// **Versions are physical leaf entries.** An update is a logical delete
/// plus an insert, so each physical entry is one version of its logical
/// key and the newest-first chain for a rid is the sequence of records
/// registered here. The store is a side table keyed by packed rid; page
/// entries themselves carry only the del_txn mark they always had. A
/// missing record means "ancient": the entry's fate was decided before any
/// active snapshot began (or before the last restart — recovery resolves
/// every pre-crash transaction), so a live entry is visible and a marked
/// entry is invisible. That convention is what lets the store live purely
/// in memory and still give correct answers across crash-restart, and
/// what lets pruning drop records instead of keeping history forever.
class MvccManager {
 public:
  /// Stamp for versions whose insert committed before the store started
  /// tracking them (below any real LSN, so visible to every snapshot).
  static constexpr Lsn kAncientStamp = 1;

  MvccManager();
  GISTCR_DISALLOW_COPY_AND_ASSIGN(MvccManager);

  /// Re-points mvcc.* metrics at \p reg (null: process fallback).
  void AttachMetrics(obs::MetricsRegistry* reg);

  // --- timestamp oracle -------------------------------------------------

  /// Fan-out from the WAL flusher: the log is durable through \p lsn.
  /// Monotone max; called via LogManager::SetDurableCallback.
  void AdvanceDurable(Lsn lsn);

  /// The stamp a snapshot beginning now would get.
  Lsn SnapshotStamp() const {
    return durable_stamp_.load(std::memory_order_acquire);
  }

  // --- snapshot registry ------------------------------------------------

  /// Registers a read-only transaction and returns its snapshot stamp.
  Lsn BeginSnapshot(TxnId txn_id);
  void EndSnapshot(TxnId txn_id);

  /// Oldest active snapshot stamp, or kInvalidLsn when none are active —
  /// the horizon below which committed history is unobservable.
  Lsn MinActiveSnapshot() const;
  bool HasActiveSnapshots() const;

  // --- version store (update-transaction write sites) -------------------

  /// A leaf entry with \p rid was inserted by \p txn (stamp pending).
  void NoteInsert(uint64_t rid, TxnId txn);

  /// The live entry with \p rid was delete-marked by \p txn (stamp
  /// pending). Creates an "ancient insert" record if the entry predates
  /// the store.
  void NoteDelete(uint64_t rid, TxnId txn);

  /// Commit-time stamping: every pending record of \p txn gets
  /// \p commit_lsn. Must run before the commit record is forced (see the
  /// class comment for why that closes the visibility race).
  void StampCommit(TxnId txn, Lsn commit_lsn);

  /// Abort: pending inserts vanish, pending delete marks are cleared
  /// (rollback restores the page entries themselves via CLRs).
  void DropAborted(TxnId txn);

  /// Undo-site hooks (partial rollback to a savepoint undoes individual
  /// operations while the transaction stays active — those versions must
  /// not be stamped at commit). Idempotent with DropAborted; no-ops when
  /// the record is absent (restart undo: the store is empty).
  void UndoInsert(uint64_t rid, TxnId txn);
  void UndoDelete(uint64_t rid, TxnId txn);

  // --- snapshot visibility ----------------------------------------------

  /// Is the physical entry (\p rid, del_txn mark \p entry_del_txn) visible
  /// to snapshot \p snapshot? See DESIGN.md section 14.3 for the rules.
  bool Visible(uint64_t rid, TxnId entry_del_txn, Lsn snapshot) const;

  // --- garbage collection -----------------------------------------------

  /// May GC physically remove the marked entry (\p rid, deleter
  /// \p del_txn)? True when its delete stamp is below every active
  /// snapshot (a missing record means it was already prunable). The caller
  /// has separately established that the deleter terminated.
  bool SafeToReclaim(uint64_t rid, TxnId del_txn) const;

  /// May GC retire (delete + free) tree nodes right now? Snapshot readers
  /// hold no signaling locks, so node retirement defers while any
  /// snapshot is active rather than drain per-node.
  bool CanRetireNodes();

  /// Drops records no active snapshot can observe: committed deletes below
  /// the horizon, and undeleted records whose insert committed below it
  /// (those become "ancient"). Returns the number of records pruned.
  size_t Prune();

  /// Records currently in the store (tests, introspection).
  size_t StoreSize() const;

  /// Number of version records for \p rid (tests: chains shrink once no
  /// snapshot pins them).
  size_t ChainLength(uint64_t rid) const;

 private:
  /// One version: a physical leaf entry's insert/delete stamps.
  /// insert_ts/delete_ts are kInvalidLsn while the writer is uncommitted.
  struct VersionRecord {
    TxnId insert_txn = kInvalidTxnId;
    Lsn insert_ts = kInvalidLsn;
    TxnId delete_txn = kInvalidTxnId;
    Lsn delete_ts = kInvalidLsn;
  };

  /// Oldest-first; the live version (no delete mark) is scanned for from
  /// the back. Chains stay short: GC prunes below the snapshot horizon.
  using Chain = std::vector<VersionRecord>;

  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable Mutex mu;
    std::unordered_map<uint64_t, Chain> chains GISTCR_GUARDED_BY(mu);
  };

  static bool StampedVisible(Lsn ts, Lsn snapshot) {
    return ts != kInvalidLsn && ts <= snapshot;
  }

  Shard& ShardOf(uint64_t rid) const {
    const uint64_t h = rid * 0x9E3779B97F4A7C15ull;
    return *shards_[(h >> 32) % kNumShards];
  }

  std::atomic<Lsn> durable_stamp_{kInvalidLsn};

  std::unique_ptr<Shard> shards_[kNumShards];

  // Snapshot registry: one entry per in-flight read-only transaction.
  // MinActiveSnapshot scans it; registries are small, and it is called
  // from GC cadences, not hot paths.
  mutable Mutex snap_mu_;
  std::unordered_map<TxnId, Lsn> active_snaps_ GISTCR_GUARDED_BY(snap_mu_);

  // txn -> rids with pending stamps, so commit stamping touches only the
  // transaction's own versions.
  mutable Mutex pending_mu_;
  std::unordered_map<TxnId, std::vector<uint64_t>> pending_
      GISTCR_GUARDED_BY(pending_mu_);

  obs::Counter* m_snapshot_begins_ = nullptr;
  obs::Counter* m_snapshot_reads_ = nullptr;
  obs::Counter* m_stamped_ = nullptr;
  obs::Counter* m_pruned_ = nullptr;
  obs::Counter* m_retire_deferred_ = nullptr;
  obs::Histogram* m_chain_length_ = nullptr;

 public:
  /// Counted by the snapshot search path in gist.cc (one per leaf-entry
  /// visibility decision batch is too fine; one per Search call).
  void CountSnapshotRead() { m_snapshot_reads_->Add(1); }
};

}  // namespace gistcr

#endif  // GISTCR_MVCC_MVCC_MANAGER_H_
