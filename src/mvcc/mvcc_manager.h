#ifndef GISTCR_MVCC_MVCC_MANAGER_H_
#define GISTCR_MVCC_MVCC_MANAGER_H_

#include <atomic>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "util/macros.h"

namespace gistcr {

/// Multi-version bookkeeping for snapshot reads (DESIGN.md section 14).
///
/// The paper's hybrid protocol makes every Degree-3 search attach predicate
/// locks top-down, so *reads* mutate shared lock-manager state. This
/// subsystem gives read-only transactions a way out: they take a snapshot
/// stamp and filter leaf entries by commit-time visibility, touching zero
/// lock-manager state. Update transactions keep the full 2PL + predicate
/// protocol unchanged.
///
/// **Timestamps are LSNs.** A transaction's commit stamp is the LSN of its
/// Commit log record; a snapshot stamp is the durable LSN the WAL flusher
/// had fanned out when the read-only transaction began. The commit path
/// stamps its versions between appending the Commit record and forcing the
/// log (TransactionManager::Commit) — but the flusher can race ahead of
/// that window: another waiter's force (or flush-ahead pressure) may cut a
/// batch containing the freshly appended Commit record and fan out a
/// durable LSN covering it before StampCommit has run. To keep the
/// invariant "snapshot stamp S >= commit C implies C's versions are
/// stamped", the commit path brackets append+stamp in a *stamping epoch*
/// (BeginStamping before the append, released by StampCommit), and
/// AdvanceDurable drains every epoch that began before the fan-out before
/// it publishes the new snapshot stamp. Epochs are held only across memory
/// operations, so the drain is bounded and cannot deadlock the flusher.
/// With that, "stamped and <= S" is exactly "committed before my
/// snapshot", with no synchronization on the read side.
///
/// **Versions are physical leaf entries.** An update is a logical delete
/// plus an insert, so each physical entry is one version of its logical
/// key and the newest-first chain for a rid is the sequence of records
/// registered here. The store is a side table keyed by packed rid; page
/// entries themselves carry only the del_txn mark they always had. A
/// missing record means "ancient": the entry's fate was decided before any
/// active snapshot began (or before the last restart — recovery resolves
/// every pre-crash transaction), so a live entry is visible and a marked
/// entry is invisible. That convention is what lets the store live purely
/// in memory and still give correct answers across crash-restart, and
/// what lets pruning drop records instead of keeping history forever.
class MvccManager {
 public:
  /// Stamp for versions whose insert committed before the store started
  /// tracking them (below any real LSN, so visible to every snapshot).
  static constexpr Lsn kAncientStamp = 1;

  MvccManager();
  GISTCR_DISALLOW_COPY_AND_ASSIGN(MvccManager);

  /// Re-points mvcc.* metrics at \p reg (null: process fallback).
  void AttachMetrics(obs::MetricsRegistry* reg);

  // --- timestamp oracle -------------------------------------------------

  /// Fan-out from the WAL flusher: the log is durable through \p lsn.
  /// Monotone max; called via LogManager::SetDurableCallback. Blocks until
  /// every stamping epoch that began before this call has been released
  /// (see the class comment), so the snapshot stamp never advances over a
  /// commit whose versions are still unstamped.
  void AdvanceDurable(Lsn lsn);

  /// The stamp a snapshot beginning now would get.
  Lsn SnapshotStamp() const {
    return durable_stamp_.load(std::memory_order_acquire);
  }

  // --- snapshot registry ------------------------------------------------

  /// Registers a read-only transaction and returns its snapshot stamp.
  Lsn BeginSnapshot(TxnId txn_id);
  void EndSnapshot(TxnId txn_id);

  /// Oldest active snapshot stamp, or kInvalidLsn when none are active —
  /// the horizon below which committed history is unobservable.
  Lsn MinActiveSnapshot() const;
  bool HasActiveSnapshots() const;

  // --- version store (update-transaction write sites) -------------------

  /// A leaf entry with \p rid was inserted by \p txn (stamp pending).
  void NoteInsert(uint64_t rid, TxnId txn);

  /// The live entry with \p rid was delete-marked by \p txn (stamp
  /// pending). Creates an "ancient insert" record if the entry predates
  /// the store.
  void NoteDelete(uint64_t rid, TxnId txn);

  /// Opens a stamping epoch for \p txn. The commit path calls this
  /// *before* appending the Commit record, so any flusher batch that can
  /// contain the record was cut after the epoch opened; AdvanceDurable
  /// then refuses to publish a covering snapshot stamp until StampCommit
  /// (or CancelStamping on append failure) closes the epoch.
  void BeginStamping(TxnId txn);

  /// Closes \p txn's stamping epoch without stamping (the Commit-record
  /// append failed, so no durable fan-out will ever cover it).
  void CancelStamping(TxnId txn);

  /// Commit-time stamping: every pending record of \p txn gets
  /// \p commit_lsn, then the stamping epoch closes. Must run before the
  /// commit record is forced (see the class comment for why the epoch +
  /// pre-force ordering closes the visibility race).
  void StampCommit(TxnId txn, Lsn commit_lsn);

  /// Abort epilogue: forgets \p txn's pending-stamp bookkeeping and clears
  /// any leftover pending records. Call only *after* rollback has undone
  /// the transaction's page changes — the per-op UndoInsert/UndoDelete
  /// hooks retract each version in step with its page undo, so lock-free
  /// snapshot scans never see a page state whose version records are
  /// already gone. (Erasing records while the aborted entries are still on
  /// the leaves would make them "ancient" — i.e. visible — to concurrent
  /// readers.)
  void DropAborted(TxnId txn);

  /// Undo-site hooks (partial rollback to a savepoint undoes individual
  /// operations while the transaction stays active — those versions must
  /// not be stamped at commit). Idempotent with DropAborted; no-ops when
  /// the record is absent (restart undo: the store is empty).
  void UndoInsert(uint64_t rid, TxnId txn);
  void UndoDelete(uint64_t rid, TxnId txn);

  // --- snapshot visibility ----------------------------------------------

  /// Is the physical entry (\p rid, del_txn mark \p entry_del_txn) visible
  /// to snapshot \p snapshot? See DESIGN.md section 14.3 for the rules.
  bool Visible(uint64_t rid, TxnId entry_del_txn, Lsn snapshot) const;

  // --- garbage collection -----------------------------------------------

  /// May GC physically remove the marked entry (\p rid, deleter
  /// \p del_txn)? True when its delete stamp is below every active
  /// snapshot (a missing record means it was already prunable). The caller
  /// has separately established that the deleter terminated.
  bool SafeToReclaim(uint64_t rid, TxnId del_txn) const;

  /// May GC retire (delete + free) tree nodes right now? Snapshot readers
  /// hold no signaling locks, so node retirement defers while any
  /// snapshot is active rather than drain per-node.
  bool CanRetireNodes();

  /// Drops records no active snapshot can observe: committed deletes below
  /// the horizon, and undeleted records whose insert committed below it
  /// (those become "ancient"). Returns the number of records pruned.
  size_t Prune();

  /// Records currently in the store (tests, introspection).
  size_t StoreSize() const;

  /// Number of version records for \p rid (tests: chains shrink once no
  /// snapshot pins them).
  size_t ChainLength(uint64_t rid) const;

 private:
  /// One version: a physical leaf entry's insert/delete stamps.
  /// insert_ts/delete_ts are kInvalidLsn while the writer is uncommitted.
  struct VersionRecord {
    TxnId insert_txn = kInvalidTxnId;
    Lsn insert_ts = kInvalidLsn;
    TxnId delete_txn = kInvalidTxnId;
    Lsn delete_ts = kInvalidLsn;
  };

  /// Oldest-first; the live version (no delete mark) is scanned for from
  /// the back. Chains stay short: GC prunes below the snapshot horizon.
  using Chain = std::vector<VersionRecord>;

  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable Mutex mu{GISTCR_LOCK_RANK(kMvccShard, "mvcc.shard.mu")};
    std::unordered_map<uint64_t, Chain> chains GISTCR_GUARDED_BY(mu);
  };

  static bool StampedVisible(Lsn ts, Lsn snapshot) {
    return ts != kInvalidLsn && ts <= snapshot;
  }

  Lsn MinActiveSnapshotLocked() const GISTCR_REQUIRES(snap_mu_);

  Shard& ShardOf(uint64_t rid) const {
    const uint64_t h = rid * 0x9E3779B97F4A7C15ull;
    return *shards_[(h >> 32) % kNumShards];
  }

  std::atomic<Lsn> durable_stamp_{kInvalidLsn};

  std::unique_ptr<Shard> shards_[kNumShards];

  // Snapshot registry: one entry per in-flight read-only transaction.
  // MinActiveSnapshot scans it; registries are small, and it is called
  // from GC cadences, not hot paths.
  mutable Mutex snap_mu_{GISTCR_LOCK_RANK(kMvccSnap, "mvcc.snap.mu")};
  std::unordered_map<TxnId, Lsn> active_snaps_ GISTCR_GUARDED_BY(snap_mu_);

  // txn -> rids with pending stamps, so commit stamping touches only the
  // transaction's own versions.
  mutable Mutex pending_mu_{GISTCR_LOCK_RANK(kMvccPending, "mvcc.pending.mu")};
  std::unordered_map<TxnId, std::vector<uint64_t>> pending_
      GISTCR_GUARDED_BY(pending_mu_);

  // Open stamping epochs (txn -> registration order). AdvanceDurable
  // drains epochs registered before it publishes a stamp; the sequence
  // number bounds the drain so a continuous commit stream cannot livelock
  // the flusher (epochs opened after the fan-out began belong to records
  // appended after the batch was cut, hence with LSNs past it).
  mutable Mutex stamping_mu_{GISTCR_LOCK_RANK(kMvccStamping, "mvcc.stamping.mu")};
  CondVar stamping_cv_;
  uint64_t stamping_seq_ GISTCR_GUARDED_BY(stamping_mu_) = 1;
  std::unordered_map<TxnId, uint64_t> stamping_
      GISTCR_GUARDED_BY(stamping_mu_);

  obs::Counter* m_snapshot_begins_ = nullptr;
  obs::Counter* m_snapshot_reads_ = nullptr;
  obs::Counter* m_stamped_ = nullptr;
  obs::Counter* m_pruned_ = nullptr;
  obs::Counter* m_retire_deferred_ = nullptr;
  obs::Histogram* m_chain_length_ = nullptr;

 public:
  /// Counted by the snapshot search path in gist.cc (one per leaf-entry
  /// visibility decision batch is too fine; one per Search call).
  void CountSnapshotRead() { m_snapshot_reads_->Add(1); }
};

}  // namespace gistcr

#endif  // GISTCR_MVCC_MVCC_MANAGER_H_
